// AES known-answer tests from FIPS-197 Appendix C and CTR-mode properties.
#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "crypto/aes_ctr.hpp"

namespace geoproof::crypto {
namespace {

Bytes block_bytes(const AesBlock& b) { return Bytes(b.begin(), b.end()); }

AesBlock block_of(const Bytes& b) {
  AesBlock out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

const Bytes kFipsPlain = from_hex("00112233445566778899aabbccddeeff");

TEST(Aes, Fips197Aes128) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  EXPECT_EQ(aes.rounds(), 10);
  const AesBlock ct = aes.encrypt(block_of(kFipsPlain));
  EXPECT_EQ(to_hex(block_bytes(ct)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(block_bytes(aes.decrypt(ct)), kFipsPlain);
}

TEST(Aes, Fips197Aes192) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  EXPECT_EQ(aes.rounds(), 12);
  const AesBlock ct = aes.encrypt(block_of(kFipsPlain));
  EXPECT_EQ(to_hex(block_bytes(ct)), "dda97ca4864cdfe06eaf70a0ec0d7191");
  EXPECT_EQ(block_bytes(aes.decrypt(ct)), kFipsPlain);
}

TEST(Aes, Fips197Aes256) {
  const Aes aes(from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  EXPECT_EQ(aes.rounds(), 14);
  const AesBlock ct = aes.encrypt(block_of(kFipsPlain));
  EXPECT_EQ(to_hex(block_bytes(ct)), "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(block_bytes(aes.decrypt(ct)), kFipsPlain);
}

TEST(Aes, Sp80038aEcbAes128) {
  // SP 800-38A F.1.1 ECB-AES128.Encrypt, first two blocks.
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(to_hex(block_bytes(aes.encrypt(
                block_of(from_hex("6bc1bee22e409f96e93d7e117393172a"))))),
            "3ad77bb40d7a3660a89ecaf32466ef97");
  EXPECT_EQ(to_hex(block_bytes(aes.encrypt(
                block_of(from_hex("ae2d8a571e03ac9c9eb76fac45af8e51"))))),
            "f5d3d58503b9699de785895a96fdbaaf");
}

TEST(Aes, InvalidKeySizeThrows) {
  EXPECT_THROW(Aes(Bytes(15, 0)), InvalidArgument);
  EXPECT_THROW(Aes(Bytes(0, 0)), InvalidArgument);
  EXPECT_THROW(Aes(Bytes(33, 0)), InvalidArgument);
}

TEST(Aes, EncryptDecryptRoundTripRandomBlocks) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  AesBlock b{};
  for (int trial = 0; trial < 64; ++trial) {
    for (auto& byte : b) byte = static_cast<std::uint8_t>(byte * 31 + trial + 1);
    EXPECT_EQ(aes.decrypt(aes.encrypt(b)), b);
  }
}

TEST(AesCtr, NonceMustBe12Bytes) {
  const Bytes key(16, 0);
  EXPECT_THROW(AesCtr(key, Bytes(11, 0)), InvalidArgument);
  EXPECT_THROW(AesCtr(key, Bytes(16, 0)), InvalidArgument);
}

TEST(AesCtr, RoundTrip) {
  const AesCtr ctr(Bytes(16, 0x42), Bytes(12, 0x01));
  const Bytes plain = bytes_of("The data to be protected, longer than one block.");
  const Bytes ct = ctr.xcrypt(plain);
  EXPECT_NE(ct, plain);
  EXPECT_EQ(ctr.xcrypt(ct), plain);
}

TEST(AesCtr, FirstBlockMatchesAesOfCounterZero) {
  const Bytes key(16, 0x11);
  const Bytes nonce(12, 0x22);
  const AesCtr ctr(key, nonce);
  // Keystream block 0 = AES_K(nonce || 00000000).
  const Aes aes(key);
  Bytes counter_block = nonce;
  counter_block.resize(16, 0x00);
  const AesBlock ks = aes.encrypt(block_of(counter_block));

  Bytes zeros(16, 0x00);
  ctr.xcrypt_at(0, zeros);
  EXPECT_EQ(zeros, block_bytes(ks));
}

TEST(AesCtr, SeekMatchesLinear) {
  const AesCtr ctr(Bytes(16, 0x07), Bytes(12, 0x09));
  Bytes whole(100, 0x00);
  ctr.xcrypt_at(0, whole);

  // Decrypting an interior window starting at an unaligned offset must
  // reproduce the same keystream bytes.
  for (std::size_t off : {0u, 1u, 15u, 16u, 17u, 50u}) {
    Bytes window(20, 0x00);
    ctr.xcrypt_at(off, window);
    for (std::size_t i = 0; i < window.size(); ++i) {
      EXPECT_EQ(window[i], whole[off + i]) << "offset " << off << " i " << i;
    }
  }
}

TEST(AesCtr, DifferentNoncesDifferentStreams) {
  const Bytes key(16, 0x01);
  const AesCtr a(key, Bytes(12, 0x00));
  const AesCtr b(key, Bytes(12, 0x01));
  Bytes za(32, 0), zb(32, 0);
  a.xcrypt_at(0, za);
  b.xcrypt_at(0, zb);
  EXPECT_NE(za, zb);
}

TEST(AesCtr, EmptyBufferNoop) {
  const AesCtr ctr(Bytes(16, 0x01), Bytes(12, 0x00));
  Bytes empty;
  ctr.xcrypt_at(12345, empty);  // must not throw
  EXPECT_TRUE(ctr.xcrypt({}).empty());
}

}  // namespace
}  // namespace geoproof::crypto

// Registry semantics: get-or-create identity, name/label validation, kind
// safety, and both renderers (Prometheus text exposition + /statusz JSON).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/errors.hpp"

namespace geoproof::obs {
namespace {

TEST(MetricName, AcceptsTheProjectShapeOnly) {
  EXPECT_TRUE(valid_metric_name("geoproof_audits_total"));
  EXPECT_TRUE(valid_metric_name("geoproof_vantage_rtt_seconds"));
  EXPECT_TRUE(valid_metric_name("geoproof_x9"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("geoproof_"));          // empty tail
  EXPECT_FALSE(valid_metric_name("audits_total"));       // no prefix
  EXPECT_FALSE(valid_metric_name("geoproof_Audits"));    // upper case
  EXPECT_FALSE(valid_metric_name("geoproof_rtt-ms"));    // dash
  EXPECT_FALSE(valid_metric_name("geoproof_rtt ms"));    // space
}

TEST(Counter, SumsAcrossStripes) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
}

TEST(Registry, GetOrCreateReturnsTheSameInstrument) {
  Registry r;
  Counter& a = r.counter("geoproof_audits_total");
  Counter& b = r.counter("geoproof_audits_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, LabelOrderDoesNotSplitASeries) {
  Registry r;
  Counter& a = r.counter("geoproof_audits_total",
                         {{"shard", "0"}, {"kind", "mac"}});
  Counter& b = r.counter("geoproof_audits_total",
                         {{"kind", "mac"}, {"shard", "0"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.series_count(), 1u);
}

TEST(Registry, DistinctLabelsAreDistinctSeries) {
  Registry r;
  Counter& a = r.counter("geoproof_audits_total", {{"shard", "0"}});
  Counter& b = r.counter("geoproof_audits_total", {{"shard", "1"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(r.series_count(), 2u);
}

TEST(Registry, KindMismatchThrows) {
  Registry r;
  r.counter("geoproof_audits_total");
  EXPECT_THROW(r.gauge("geoproof_audits_total"), InvalidArgument);
  EXPECT_THROW(r.histogram("geoproof_audits_total"), InvalidArgument);
}

TEST(Registry, RejectsBadNamesAndLabelKeys) {
  Registry r;
  EXPECT_THROW(r.counter("audits_total"), InvalidArgument);
  EXPECT_THROW(r.counter("geoproof_Bad"), InvalidArgument);
  EXPECT_THROW(r.counter("geoproof_ok", {{"Shard", "0"}}), InvalidArgument);
  EXPECT_THROW(r.counter("geoproof_ok", {{"", "0"}}), InvalidArgument);
  // Label *values* are free-form (they get escaped on render).
  EXPECT_NO_THROW(r.counter("geoproof_ok", {{"vantage", "Töwn \"x\"\n"}}));
}

TEST(Registry, PrometheusRendersCountersAndGauges) {
  Registry r;
  r.counter("geoproof_audits_total", {{"kind", "mac"}}, "audits run").inc(3);
  r.gauge("geoproof_engine_queue_depth").set(7);
  const std::string text = r.render_prometheus();
  EXPECT_NE(text.find("# HELP geoproof_audits_total audits run"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE geoproof_audits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("geoproof_audits_total{kind=\"mac\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE geoproof_engine_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("geoproof_engine_queue_depth 7"), std::string::npos);
}

TEST(Registry, PrometheusEscapesLabelValues) {
  Registry r;
  r.counter("geoproof_audits_total", {{"vantage", "a\"b\\c\nd"}}).inc();
  const std::string text = r.render_prometheus();
  EXPECT_NE(text.find("vantage=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(Registry, PrometheusHistogramIsCumulativeInSeconds) {
  Registry r;
  Histogram& h = r.histogram("geoproof_audit_seconds");
  h.record_ns(1'000);       // 1 us
  h.record_ns(1'000'000);   // 1 ms
  h.record_ns(1'000'000);   // 1 ms
  const std::string text = r.render_prometheus();
  EXPECT_NE(text.find("# TYPE geoproof_audit_seconds histogram"),
            std::string::npos);
  // Cumulative counts: every rendered bucket boundary >= 1ms must carry
  // all three observations, and +Inf always renders.
  EXPECT_NE(text.find("geoproof_audit_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("geoproof_audit_seconds_count 3"), std::string::npos);
  // Sum is in seconds: 1us + 1ms + 1ms = 0.002001 s.
  EXPECT_NE(text.find("geoproof_audit_seconds_sum 0.002001"),
            std::string::npos);
}

TEST(Registry, SnapshotsRenderAsPrefixedGauges) {
  Registry r;
  const std::uint64_t id = r.add_snapshot("geoproof_track", [] {
    return Fields{{"sweeps_total", 5}, {"alarms_total", 1}};
  });
  std::string text = r.render_prometheus();
  EXPECT_NE(text.find("geoproof_track_sweeps_total 5"), std::string::npos);
  EXPECT_NE(text.find("geoproof_track_alarms_total 1"), std::string::npos);
  EXPECT_EQ(r.series_count(), 1u);

  r.remove_snapshot(id);
  text = r.render_prometheus();
  EXPECT_EQ(text.find("geoproof_track_sweeps_total"), std::string::npos);
  EXPECT_EQ(r.series_count(), 0u);
}

TEST(Registry, SnapshotValidation) {
  Registry r;
  EXPECT_THROW(r.add_snapshot("track", [] { return Fields{}; }),
               InvalidArgument);
  EXPECT_THROW(r.add_snapshot("geoproof_track", nullptr), InvalidArgument);
  // Removing an unknown id is a no-op (double-deregister safe).
  EXPECT_NO_THROW(r.remove_snapshot(12345));
}

TEST(Registry, WriteJsonCarriesSeriesAndSnapshots) {
  Registry r;
  r.counter("geoproof_audits_total").inc(2);
  r.add_snapshot("geoproof_track",
                 [] { return Fields{{"sweeps_total", 9}}; });
  JsonWriter w;
  r.write_json(w);
  const std::string json = std::move(w).str();
  EXPECT_NE(json.find("\"geoproof_audits_total\""), std::string::npos);
  EXPECT_NE(json.find("\"geoproof_track_sweeps_total\":9"),
            std::string::npos);
}

TEST(Registry, ProcessRegistryIsOneInstance) {
  EXPECT_EQ(&Registry::process(), &Registry::process());
}

}  // namespace
}  // namespace geoproof::obs

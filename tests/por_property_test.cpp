// Property sweeps over the full POR pipeline: for many seeds and damage
// patterns, encode -> corrupt -> extract either restores the file exactly
// or fails loudly; never silent wrong data.
#include <gtest/gtest.h>

#include <set>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "crypto/prp.hpp"
#include "por/analysis.hpp"
#include "por/encoder.hpp"

namespace geoproof::por {
namespace {

const Bytes kMaster = bytes_of("property master");

PorParams small_params() {
  PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  p.tag.tag_bits = 64;
  return p;
}

class PorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PorSeedSweep, EncodeExtractIdentity) {
  Rng rng(GetParam());
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  const std::size_t size = 500 + static_cast<std::size_t>(rng.next_below(20000));
  const Bytes file = rng.next_bytes(size);
  const EncodedFile ef = enc.encode(file, GetParam(), kMaster);
  const auto rep = ext.extract(ef, kMaster);
  EXPECT_EQ(rep.file, file);
  EXPECT_EQ(rep.bad_segments, 0u);
}

TEST_P(PorSeedSweep, ExtractUnderScatteredCorruption) {
  // Corrupt ~2% of segments at random: scattered damage stays within the
  // per-chunk erasure budget with high probability at this geometry, and
  // extraction must restore the exact original whenever it succeeds.
  Rng rng(GetParam() ^ 0xc0ffee);
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  const Bytes file = rng.next_bytes(15000);
  EncodedFile ef = enc.encode(file, 1, kMaster);
  unsigned corrupted = 0;
  for (auto& seg : ef.segments) {
    if (rng.next_bool(0.02)) {
      seg[static_cast<std::size_t>(rng.next_below(seg.size()))] ^= 0x5a;
      ++corrupted;
    }
  }
  try {
    const auto rep = ext.extract(ef, kMaster);
    EXPECT_EQ(rep.file, file);
    EXPECT_EQ(rep.bad_segments, corrupted);
  } catch (const DecodeError&) {
    // Legal outcome when damage clustered beyond a chunk's budget; the
    // essential property is no silent wrong answer.
    SUCCEED();
  }
}

TEST_P(PorSeedSweep, ChallengeDetectionMatchesTheory) {
  // For each seed: corrupt a known fraction, run many independent
  // challenges, compare the hit rate with the hypergeometric prediction.
  Rng rng(GetParam() ^ 0xde7ec7);
  const PorEncoder enc(small_params());
  const Bytes file = rng.next_bytes(60000);
  EncodedFile ef = enc.encode(file, 2, kMaster);
  const SegmentVerifier ver(small_params(), kMaster, 2);

  std::set<std::uint64_t> bad;
  while (bad.size() < ef.n_segments / 20) {  // 5% corrupted
    const auto idx = rng.next_below(ef.n_segments);
    if (bad.insert(idx).second) {
      ef.segments[static_cast<std::size_t>(idx)][0] ^= 0x01;
    }
  }

  const unsigned k = 10;
  int detected = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const auto challenge = sample_challenge(ef.n_segments, k, rng);
    for (const auto c : challenge) {
      if (!ver.verify(c, ef.segments[static_cast<std::size_t>(c)])) {
        ++detected;
        break;
      }
    }
  }
  const double expect =
      detection_probability(ef.n_segments, bad.size(), k);
  EXPECT_NEAR(static_cast<double>(detected) / trials, expect, 0.09);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PorSeedSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

TEST(PorPipelineProperty, PermutationActuallyDisperses) {
  // Sequential plaintext blocks must land far apart in the stored layout:
  // check that consecutive encoded-block positions are not consecutive in
  // storage (otherwise a provider could archive "cold ranges").
  const PorParams p = small_params();
  const PorKeys keys = PorKeys::derive(kMaster, 3, p.tag);
  const crypto::BlockPermutation prp(keys.prp_key, 10000);
  unsigned adjacent = 0;
  for (std::uint64_t q = 0; q + 1 < 1000; ++q) {
    const std::uint64_t a = prp.apply(q);
    const std::uint64_t b = prp.apply(q + 1);
    const std::uint64_t d = a > b ? a - b : b - a;
    if (d == 1) ++adjacent;
  }
  EXPECT_LT(adjacent, 5u);  // ~999/10000 expected for a random permutation
}

TEST(PorPipelineProperty, DistinctMastersShareNothing) {
  const PorEncoder enc(small_params());
  Rng rng(55);
  const Bytes file = rng.next_bytes(8000);
  const EncodedFile a = enc.encode(file, 1, bytes_of("master-a"));
  const EncodedFile b = enc.encode(file, 1, bytes_of("master-b"));
  ASSERT_EQ(a.n_segments, b.n_segments);
  std::size_t equal_segments = 0;
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    equal_segments += a.segments[i] == b.segments[i];
  }
  EXPECT_EQ(equal_segments, 0u);
}

TEST(PorPipelineProperty, ExtractDetectsWrongFileId) {
  // Metadata swap: extracting with a mismatched file id derives wrong keys
  // and must fail (every tag breaks -> erasures exceed capacity).
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  Rng rng(66);
  const Bytes file = rng.next_bytes(8000);
  EncodedFile ef = enc.encode(file, 7, kMaster);
  ef.file_id = 8;  // tampered metadata
  EXPECT_THROW(ext.extract(ef, kMaster), Error);
}

}  // namespace
}  // namespace geoproof::por

#include "por/dynamic.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "por/merkle.hpp"

namespace geoproof::por {
namespace {

const Bytes kMaster = bytes_of("dynamic por master");

PorParams small_params() {
  PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  p.tag.tag_bits = 64;
  return p;
}

crypto::Digest leaf(int v) {
  Bytes b(4);
  store_be32(b, static_cast<std::uint32_t>(v));
  return crypto::Sha256::hash(b);
}

TEST(MerkleTree, SingleLeaf) {
  MerkleTree tree({leaf(1)});
  EXPECT_EQ(tree.size(), 1u);
  const auto proof = tree.proof(0);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), 0, leaf(1), proof));
}

TEST(MerkleTree, AllProofsVerify) {
  std::vector<crypto::Digest> leaves;
  for (int i = 0; i < 13; ++i) leaves.push_back(leaf(i));  // non-power-of-2
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_TRUE(MerkleTree::verify(tree.root(), i, leaf(static_cast<int>(i)),
                                   tree.proof(i)))
        << i;
  }
}

TEST(MerkleTree, WrongLeafFails) {
  std::vector<crypto::Digest> leaves = {leaf(0), leaf(1), leaf(2), leaf(3)};
  MerkleTree tree(leaves);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 2, leaf(9), tree.proof(2)));
}

TEST(MerkleTree, WrongIndexFails) {
  std::vector<crypto::Digest> leaves = {leaf(0), leaf(1), leaf(2), leaf(3)};
  MerkleTree tree(leaves);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 1, leaf(2), tree.proof(2)));
}

TEST(MerkleTree, IndexBeyondTreeFails) {
  MerkleTree tree({leaf(0), leaf(1)});
  const auto proof = tree.proof(0);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 4, leaf(0), proof));
}

TEST(MerkleTree, UpdateChangesRootConsistently) {
  std::vector<crypto::Digest> leaves = {leaf(0), leaf(1), leaf(2), leaf(3),
                                        leaf(4)};
  MerkleTree tree(leaves);
  const crypto::Digest old_root = tree.root();
  const auto proof = tree.proof(2);
  const crypto::Digest predicted =
      MerkleTree::root_after_update(2, leaf(99), proof);
  tree.update(2, leaf(99));
  EXPECT_NE(tree.root(), old_root);
  EXPECT_EQ(tree.root(), predicted);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), 2, leaf(99), tree.proof(2)));
  // Untouched leaves still verify.
  EXPECT_TRUE(MerkleTree::verify(tree.root(), 0, leaf(0), tree.proof(0)));
}

TEST(MerkleTree, AppendGrows) {
  MerkleTree tree({leaf(0)});
  for (int i = 1; i < 20; ++i) {
    tree.append(leaf(i));
    EXPECT_EQ(tree.size(), static_cast<std::size_t>(i) + 1);
    for (std::size_t j = 0; j <= static_cast<std::size_t>(i); ++j) {
      ASSERT_TRUE(MerkleTree::verify(tree.root(), j, leaf(static_cast<int>(j)),
                                     tree.proof(j)))
          << "after append " << i << " leaf " << j;
    }
  }
}

TEST(MerkleTree, EmptyRejected) {
  EXPECT_THROW(MerkleTree({}), InvalidArgument);
}

TEST(MerkleTree, ProofIndexValidated) {
  MerkleTree tree({leaf(0), leaf(1)});
  EXPECT_THROW(tree.proof(2), InvalidArgument);
  EXPECT_THROW(tree.update(2, leaf(0)), InvalidArgument);
}

struct DynFixture {
  PorParams params = small_params();
  EncodedFile file;
  DynFixture() {
    Rng rng(42);
    const PorEncoder enc(params);
    file = enc.encode(rng.next_bytes(8000), 77, kMaster);
  }
};

TEST(DynamicPor, HonestReadsVerify) {
  DynFixture f;
  DynamicPorProvider provider(f.file);
  DynamicPorClient client(provider.root(), f.params, kMaster, 77);
  for (std::uint64_t i = 0; i < provider.n_segments(); i += 7) {
    EXPECT_TRUE(client.verify_read(i, provider.read(i))) << i;
  }
}

TEST(DynamicPor, TamperedSegmentDetected) {
  DynFixture f;
  DynamicPorProvider provider(f.file);
  DynamicPorClient client(provider.root(), f.params, kMaster, 77);
  provider.tamper(5, 3, 0x40);
  EXPECT_FALSE(client.verify_read(5, provider.read(5)));
  // Other segments unaffected.
  EXPECT_TRUE(client.verify_read(6, provider.read(6)));
}

TEST(DynamicPor, VerifiedUpdateRoundTrip) {
  DynFixture f;
  DynamicPorProvider provider(f.file);
  DynamicPorClient client(provider.root(), f.params, kMaster, 77);

  // Owner writes new content to segment 4.
  Rng rng(1);
  const Bytes new_data = rng.next_bytes(f.params.blocks_per_segment *
                                        f.params.block_size);
  const Bytes new_segment = client.make_segment(4, new_data);

  const ReadProof old_proof = provider.read(4);
  ASSERT_TRUE(client.apply_write(4, old_proof, new_segment));
  const crypto::Digest provider_root = provider.write(4, new_segment);

  // Client's predicted root matches the provider's actual root.
  EXPECT_EQ(client.root(), provider_root);
  // And subsequent reads verify against the new root.
  EXPECT_TRUE(client.verify_read(4, provider.read(4)));
}

TEST(DynamicPor, StaleProofRejectedOnWrite) {
  DynFixture f;
  DynamicPorProvider provider(f.file);
  DynamicPorClient client(provider.root(), f.params, kMaster, 77);

  const ReadProof proof_before = provider.read(4);
  // Another write happens first; the old proof for segment 4 goes stale
  // only if it shares the path - write to a sibling-adjacent index.
  const Bytes other = client.make_segment(5, Bytes(f.params.blocks_per_segment *
                                                       f.params.block_size,
                                                   0x11));
  ASSERT_TRUE(client.apply_write(5, provider.read(5), other));
  provider.write(5, other);

  // The stale proof no longer authenticates against the advanced root.
  EXPECT_FALSE(client.apply_write(4, proof_before,
                                  client.make_segment(4, Bytes(80, 0x22))));
}

TEST(DynamicPor, DroppedUpdateCaughtOnNextRead) {
  DynFixture f;
  DynamicPorProvider provider(f.file);
  DynamicPorClient client(provider.root(), f.params, kMaster, 77);

  const Bytes new_segment = client.make_segment(
      3, Bytes(f.params.blocks_per_segment * f.params.block_size, 0x33));
  ASSERT_TRUE(client.apply_write(3, provider.read(3), new_segment));
  // Provider "acknowledges" but silently discards the write.
  // Next read of segment 3 serves the old data: proof fails against the
  // client's advanced root.
  EXPECT_FALSE(client.verify_read(3, provider.read(3)));
}

TEST(DynamicPor, ReadValidation) {
  DynFixture f;
  DynamicPorProvider provider(f.file);
  EXPECT_THROW(provider.read(provider.n_segments()), StorageError);
  EXPECT_THROW(provider.tamper(provider.n_segments(), 0, 1), StorageError);
}

TEST(DynamicPor, MakeSegmentValidatesSize) {
  DynFixture f;
  DynamicPorClient client(crypto::Digest{}, f.params, kMaster, 77);
  EXPECT_THROW(client.make_segment(0, Bytes(3, 0)), InvalidArgument);
}

}  // namespace
}  // namespace geoproof::por

#include "net/channel.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace geoproof::net {
namespace {

TEST(SimRequestChannel, ChargesBothDirections) {
  SimClock clock;
  SimRequestChannel ch(
      clock, [](std::size_t) { return Millis{1.0}; },
      [](BytesView req) { return Bytes(req.begin(), req.end()); });
  const Bytes resp = ch.request(bytes_of("ping"));
  EXPECT_EQ(resp, bytes_of("ping"));
  EXPECT_NEAR(to_millis(clock.now()).count(), 2.0, 1e-9);
  EXPECT_EQ(ch.exchanges(), 1u);
}

TEST(SimRequestChannel, SizeDependentLatency) {
  SimClock clock;
  SimRequestChannel ch(
      clock, [](std::size_t bytes) { return Millis{0.001 * static_cast<double>(bytes)}; },
      [](BytesView) { return Bytes(100, 0); });
  (void)ch.request(Bytes(10, 0));
  // 10 bytes out (0.01 ms) + 100 bytes back (0.1 ms).
  EXPECT_NEAR(to_millis(clock.now()).count(), 0.11, 1e-9);
}

TEST(SimRequestChannel, HandlerLatencyVisibleToCaller) {
  // A handler that charges the same clock (e.g. a disk look-up) shows up in
  // the measured RTT - the core of the GeoProof timing argument.
  SimClock clock;
  SimRequestChannel ch(
      clock, [](std::size_t) { return Millis{0.5}; },
      [&clock](BytesView) {
        clock.advance(Millis{13.1});  // disk look-up at the provider
        return bytes_of("segment");
      });
  const Millis before = to_millis(clock.now());
  (void)ch.request(bytes_of("challenge"));
  const Millis rtt = to_millis(clock.now()) - before;
  EXPECT_NEAR(rtt.count(), 0.5 + 13.1 + 0.5, 1e-9);
}

TEST(SimRequestChannel, NullArgumentsRejected) {
  SimClock clock;
  EXPECT_THROW(SimRequestChannel(clock, nullptr, [](BytesView) { return Bytes{}; }),
               InvalidArgument);
  EXPECT_THROW(SimRequestChannel(clock, [](std::size_t) { return Millis{0}; },
                                 nullptr),
               InvalidArgument);
}

TEST(LanLatencyFn, DeterministicWithoutSeed) {
  const auto fn = lan_latency(LanModel{}, Kilometers{1.0});
  EXPECT_EQ(fn(100).count(), fn(100).count());
}

TEST(LanLatencyFn, JitterWithSeedVaries) {
  const auto fn = lan_latency(LanModel{}, Kilometers{1.0}, 42);
  const double a = fn(100).count();
  const double b = fn(100).count();
  EXPECT_NE(a, b);
}

TEST(InternetLatencyFn, HalfOfRtt) {
  InternetModelParams p;
  p.jitter_stddev_ms = 0;
  const InternetModel model(p);
  const auto fn = internet_latency(model, Kilometers{1000.0});
  EXPECT_NEAR(fn(0).count(), model.rtt(Kilometers{1000.0}).count() / 2.0,
              1e-9);
}

TEST(RelayComposition, ExtraHopExtendsRtt) {
  // Model Fig. 6: verifier -> provider (LAN) -> remote data centre
  // (Internet). The relay path's RTT includes both leg pairs.
  SimClock clock;
  InternetModelParams ip;
  ip.jitter_stddev_ms = 0;
  const InternetModel inet(ip);

  auto remote_handler = [&clock](BytesView) {
    clock.advance(Millis{5.406});  // fast remote disk
    return bytes_of("segment");
  };
  auto remote_channel = std::make_shared<SimRequestChannel>(
      clock, internet_latency(inet, Kilometers{360.0}), remote_handler);
  auto relay_handler = [remote_channel](BytesView req) {
    return remote_channel->request(req);  // provider just forwards
  };
  LanModelParams lp;
  lp.jitter_stddev_ms = 0;
  SimRequestChannel verifier_channel(clock, lan_latency(LanModel(lp), Kilometers{0.1}),
                                     relay_handler);

  const Millis before = to_millis(clock.now());
  (void)verifier_channel.request(bytes_of("c"));
  const double rtt = (to_millis(clock.now()) - before).count();
  // Must include the full Internet RTT to 360 km plus the disk time.
  EXPECT_GT(rtt, inet.rtt(Kilometers{360.0}).count() + 5.4);
}

TEST(SteadyAuditTimer, MonotoneNonNegative) {
  SteadyAuditTimer timer;
  const Millis a = timer.now();
  const Millis b = timer.now();
  EXPECT_GE(a.count(), 0.0);
  EXPECT_GE(b.count(), a.count());
}

TEST(SimAuditTimer, TracksSimClock) {
  SimClock clock;
  SimAuditTimer timer(clock);
  EXPECT_EQ(timer.now().count(), 0.0);
  clock.advance(Millis{7.25});
  EXPECT_DOUBLE_EQ(timer.now().count(), 7.25);
}

}  // namespace
}  // namespace geoproof::net

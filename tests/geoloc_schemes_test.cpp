#include "geoloc/schemes.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace geoproof::geoloc {
namespace {

using net::GeoPoint;
using net::haversine;
using net::InternetModel;
using net::InternetModelParams;

InternetModel clean_model() {
  InternetModelParams p;
  p.jitter_stddev_ms = 0;
  return InternetModel(p);
}

TEST(HonestProbe, RttGrowsWithLandmarkDistance) {
  const auto probe = honest_probe(clean_model(), net::places::brisbane());
  const Landmark near{"Brisbane", net::places::brisbane()};
  const Landmark far{"Perth", net::places::perth()};
  EXPECT_LT(probe(near).count(), probe(far).count());
}

TEST(DelayPaddedProbe, AddsExactPadding) {
  const auto base = honest_probe(clean_model(), net::places::sydney());
  const auto padded = delay_padded_probe(base, Millis{25.0});
  const Landmark lm{"Brisbane", net::places::brisbane()};
  EXPECT_NEAR(padded(lm).count(), base(lm).count() + 25.0, 1e-9);
}

TEST(DelayPaddedProbe, RejectsNegativePadding) {
  const auto base = honest_probe(clean_model(), net::places::sydney());
  EXPECT_THROW(delay_padded_probe(base, Millis{-1.0}), InvalidArgument);
  EXPECT_THROW(delay_padded_probe(nullptr, Millis{1.0}), InvalidArgument);
}

TEST(GeoPing, PicksNearestLandmarkForHonestTarget) {
  const GeoPing gp(australian_landmarks());
  // Target in Sydney: nearest landmark is the Sydney one.
  const auto probe = honest_probe(clean_model(), net::places::sydney());
  const GeoPoint est = gp.locate(probe);
  EXPECT_NEAR(haversine(est, net::places::sydney()).value, 0.0, 1.0);
}

TEST(GeoPing, ErrorBoundedByLandmarkDensity) {
  // A target between landmarks (rural NSW) maps to some capital; the error
  // is the distance to the nearest landmark - potentially hundreds of km.
  const GeoPing gp(australian_landmarks());
  const GeoPoint outback{-31.0, 146.0};
  const auto probe = honest_probe(clean_model(), outback);
  const GeoPoint est = gp.locate(probe);
  const double err = haversine(est, outback).value;
  EXPECT_GT(err, 100.0);   // cannot do better than landmark spacing
  EXPECT_LT(err, 1000.0);  // but lands on *some* nearby capital
}

TEST(GeoPing, DelayPaddingDisplacesEstimate) {
  // Padding makes everything look far; the argmin landmark can flip and the
  // estimate no longer tracks the true position reliably. With uniform
  // padding the ordering survives, so pad asymmetrically by distance-
  // dependent queueing (modelled: pad only when the landmark is close).
  const GeoPing gp(australian_landmarks());
  const GeoPoint truth = net::places::sydney();
  const auto base = honest_probe(clean_model(), truth);
  const RttProbe adversarial = [&base](const Landmark& lm) {
    const Millis honest = base(lm);
    // The malicious target answers slowly to nearby landmarks only.
    return honest.count() < 40.0 ? honest + Millis{60.0} : honest;
  };
  const GeoPoint est = gp.locate(adversarial);
  EXPECT_GT(haversine(est, truth).value, 500.0);
}

TEST(GeoPing, RequiresLandmarks) {
  EXPECT_THROW(GeoPing({}), InvalidArgument);
}

TEST(OctantLite, HonestTargetInsideRegion) {
  const OctantLite oct(australian_landmarks(), clean_model());
  const GeoPoint truth = net::places::melbourne();
  const auto region = oct.locate(honest_probe(clean_model(), truth));
  ASSERT_FALSE(region.empty);
  // The centroid should be within a few hundred km of the truth and the
  // region should have non-trivial area (geolocation is rough).
  EXPECT_LT(haversine(region.centroid, truth).value, 500.0);
  EXPECT_GT(region.area_km2, 0.0);
}

TEST(OctantLite, PaddingInflatesOrEmptiesRegion) {
  const OctantLite oct(australian_landmarks(), clean_model());
  const GeoPoint truth = net::places::melbourne();
  const auto honest_region = oct.locate(honest_probe(clean_model(), truth));
  const auto padded_region = oct.locate(
      delay_padded_probe(honest_probe(clean_model(), truth), Millis{80.0}));
  ASSERT_FALSE(honest_region.empty);
  // Padded delays claim "everything is far": the annuli exclude the true
  // position, so either the region vanishes or its centroid moves away.
  if (!padded_region.empty) {
    EXPECT_GT(haversine(padded_region.centroid, truth).value,
              haversine(honest_region.centroid, truth).value);
  } else {
    SUCCEED();
  }
}

TEST(OctantLite, ParameterValidation) {
  EXPECT_THROW(OctantLite({}, clean_model()), InvalidArgument);
  EXPECT_THROW(OctantLite(australian_landmarks(), clean_model(), 1.5),
               InvalidArgument);
  EXPECT_THROW(OctantLite(australian_landmarks(), clean_model(), 0.3, 2),
               InvalidArgument);
}

TEST(TbgMultilateration, LocatesHonestTargetWell) {
  const TbgMultilateration tbg(australian_landmarks(), clean_model());
  for (const GeoPoint truth : {net::places::sydney(), net::places::adelaide(),
                               GeoPoint{-30.0, 145.0}}) {
    const GeoPoint est = tbg.locate(honest_probe(clean_model(), truth));
    EXPECT_LT(haversine(est, truth).value, 150.0)
        << "target " << truth.lat_deg << "," << truth.lon_deg;
  }
}

TEST(TbgMultilateration, JitterDegradesAccuracy) {
  const TbgMultilateration tbg(australian_landmarks(), clean_model());
  const GeoPoint truth{-29.0, 147.0};
  const GeoPoint clean_est = tbg.locate(honest_probe(clean_model(), truth));
  InternetModelParams noisy;
  noisy.jitter_stddev_ms = 8.0;  // congested paths
  const InternetModel noisy_model(noisy);
  const GeoPoint noisy_est = tbg.locate(honest_probe(noisy_model, truth, 99));
  EXPECT_LE(haversine(clean_est, truth).value,
            haversine(noisy_est, truth).value + 50.0);
}

TEST(TbgMultilateration, DelayPaddingDefeatsIt) {
  // §III-B's security claim: schemes assume an honest target. 60 ms of
  // padding inflates every distance estimate and drags the fix far away.
  const TbgMultilateration tbg(australian_landmarks(), clean_model());
  const GeoPoint truth = net::places::brisbane();
  const GeoPoint honest_est = tbg.locate(honest_probe(clean_model(), truth));
  const GeoPoint attacked_est = tbg.locate(
      delay_padded_probe(honest_probe(clean_model(), truth), Millis{60.0}));
  EXPECT_LT(haversine(honest_est, truth).value, 150.0);
  EXPECT_GT(haversine(attacked_est, truth).value, 400.0);
}

TEST(TbgMultilateration, NeedsThreeLandmarks) {
  std::vector<Landmark> two = {australian_landmarks()[0],
                               australian_landmarks()[1]};
  EXPECT_THROW(TbgMultilateration(two, clean_model()), InvalidArgument);
}

TEST(IpMappingDb, ReturnsRecordedLocation) {
  IpMappingDb db;
  db.add("storage.example.au", net::places::sydney());
  EXPECT_TRUE(db.contains("storage.example.au"));
  EXPECT_EQ(db.locate("storage.example.au"), net::places::sydney());
}

TEST(IpMappingDb, UnknownHostThrows) {
  IpMappingDb db;
  EXPECT_FALSE(db.contains("nowhere"));
  EXPECT_THROW(db.locate("nowhere"), InvalidArgument);
}

TEST(IpMappingDb, AdversaryControlsTheAnswer) {
  // A provider that registers a Sydney address while hosting in Singapore:
  // the scheme's "estimate" is whatever the database says - error unbounded
  // and undetectable from the mapping alone.
  IpMappingDb db;
  const GeoPoint claimed = net::places::sydney();
  const GeoPoint actual{1.3521, 103.8198};  // Singapore
  db.add("cloud.example.au", claimed);
  const GeoPoint est = db.locate("cloud.example.au");
  EXPECT_GT(haversine(est, actual).value, 5000.0);
}

TEST(AustralianLandmarks, EightDistinctCities) {
  const auto lms = australian_landmarks();
  ASSERT_EQ(lms.size(), 8u);
  for (std::size_t i = 0; i < lms.size(); ++i) {
    for (std::size_t j = i + 1; j < lms.size(); ++j) {
      EXPECT_GT(haversine(lms[i].pos, lms[j].pos).value, 100.0)
          << lms[i].name << " vs " << lms[j].name;
    }
  }
}

}  // namespace
}  // namespace geoproof::geoloc

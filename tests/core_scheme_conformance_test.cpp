// Cross-scheme conformance suite: the same audit/replay/tamper/timing test
// body runs against all three AuditScheme implementations (MAC, sentinel,
// dynamic) strictly through the common core::AuditScheme interface — the
// contract AuditService and the sharded audit engine rely on. Plus unit
// coverage of the shared bounded NonceLedger (regression: the per-flavour
// outstanding-nonce sets used to grow without bound).
#include "core/scheme.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/dynamic_geoproof.hpp"
#include "core/provider.hpp"
#include "core/verifier.hpp"
#include "net/channel.hpp"

namespace geoproof::core {
namespace {

// ---------------------------------------------------------------------------
// NonceLedger
// ---------------------------------------------------------------------------

TEST(NonceLedger, IssueConsumeOnce) {
  NonceLedger ledger(1, 8);
  const Bytes nonce = ledger.issue();
  EXPECT_EQ(ledger.outstanding(), 1u);
  EXPECT_TRUE(ledger.consume(nonce).has_value());
  EXPECT_EQ(ledger.outstanding(), 0u);
  // Second consume (replay) fails.
  EXPECT_FALSE(ledger.consume(nonce).has_value());
}

TEST(NonceLedger, PayloadRoundTrip) {
  NonceLedger ledger(2, 8);
  const Bytes nonce = ledger.issue({7, 11, 13});
  const auto payload = ledger.consume(nonce);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, (std::vector<std::uint64_t>{7, 11, 13}));
}

TEST(NonceLedger, UnknownNonceFails) {
  NonceLedger ledger(3, 8);
  EXPECT_FALSE(ledger.consume(bytes_of("never issued")).has_value());
}

TEST(NonceLedger, CapExpiresOldestFirst) {
  // Regression: outstanding nonces must not grow without bound in a
  // long-running service that issues audits whose transcripts never return.
  NonceLedger ledger(4, 4);
  std::vector<Bytes> nonces;
  for (int i = 0; i < 10; ++i) nonces.push_back(ledger.issue());
  EXPECT_EQ(ledger.outstanding(), 4u);
  EXPECT_EQ(ledger.expired(), 6u);
  // The six oldest expired; the four newest are still consumable.
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(ledger.consume(nonces[i]).has_value()) << i;
  }
  for (int i = 6; i < 10; ++i) {
    EXPECT_TRUE(ledger.consume(nonces[i]).has_value()) << i;
  }
}

TEST(NonceLedger, ConsumedEntriesDoNotCountTowardCap) {
  NonceLedger ledger(5, 2);
  for (int i = 0; i < 100; ++i) {
    const Bytes nonce = ledger.issue();
    ASSERT_TRUE(ledger.consume(nonce).has_value());
  }
  EXPECT_EQ(ledger.outstanding(), 0u);
  EXPECT_EQ(ledger.expired(), 0u);  // nothing was dropped unconsumed
}

TEST(NonceLedger, ZeroCapacityRejected) {
  EXPECT_THROW(NonceLedger(6, 0), InvalidArgument);
}

TEST(NonceLedger, QueueStaysBoundedBehindStuckFrontEntry) {
  // Regression: a long-outstanding nonce at the front of the issue-order
  // queue must not pin every consumed entry behind it — the internal queue
  // is compacted, not just front-popped.
  NonceLedger ledger(7, 8);
  const Bytes stuck = ledger.issue();  // never consumed, stays at the front
  for (int i = 0; i < 10000; ++i) {
    const Bytes nonce = ledger.issue();
    ASSERT_TRUE(ledger.consume(nonce).has_value());
  }
  EXPECT_EQ(ledger.outstanding(), 1u);
  EXPECT_LE(ledger.queue_depth(), 2 * ledger.capacity() + 16);
  // The stuck nonce survived (it never hit the capacity limit).
  EXPECT_TRUE(ledger.consume(stuck).has_value());
}

// ---------------------------------------------------------------------------
// Conformance harness: one world per flavour, driven only through
// core::AuditScheme + VerifierDevice.
// ---------------------------------------------------------------------------

enum class Flavour { kMac, kSentinel, kDynamic };

const char* flavour_name(Flavour f) {
  switch (f) {
    case Flavour::kMac: return "mac";
    case Flavour::kSentinel: return "sentinel";
    case Flavour::kDynamic: return "dynamic";
  }
  return "?";
}

constexpr net::GeoPoint kSite{-27.47, 153.02};
const Bytes kMaster = bytes_of("conformance master key");

struct SchemeWorld {
  SimClock clock;
  // Flavour-specific provider state (only one pair is populated).
  std::unique_ptr<CloudProvider> provider;
  std::unique_ptr<por::DynamicPorProvider> dyn_provider;
  std::unique_ptr<DynamicProviderService> dyn_service;
  std::unique_ptr<net::SimRequestChannel> channel;
  std::unique_ptr<net::SimAuditTimer> timer;
  std::unique_ptr<VerifierDevice> verifier;
  std::unique_ptr<AuditScheme> scheme;
  FileRecord record;
  // Corrupt every stored block/segment of the audited file.
  std::function<void()> tamper_all;

  AuditReport run(std::uint32_t k) {
    const AuditRequest request = scheme->make_request(record, k);
    const SignedTranscript transcript = verifier->run_audit(request);
    return scheme->verify(record, transcript);
  }
};

AuditorConfig base_config(const VerifierDevice& verifier,
                          std::size_t nonce_capacity) {
  AuditorConfig cfg;
  cfg.master_key = kMaster;
  cfg.verifier_pk = verifier.public_key();
  cfg.expected_position = kSite;
  cfg.policy = LatencyPolicy::for_disk(storage::wd2500jd());
  cfg.max_outstanding_nonces = nonce_capacity;
  return cfg;
}

std::unique_ptr<SchemeWorld> make_world(
    Flavour flavour,
    std::size_t nonce_capacity = NonceLedger::kDefaultCapacity) {
  auto world = std::make_unique<SchemeWorld>();
  SchemeWorld& w = *world;
  w.timer = std::make_unique<net::SimAuditTimer>(w.clock);
  Rng rng(17);
  const auto lan = [&w](net::RequestHandler handler) {
    return std::make_unique<net::SimRequestChannel>(
        w.clock, net::lan_latency(net::LanModel{}, Kilometers{0.1}, 5),
        std::move(handler));
  };

  switch (flavour) {
    case Flavour::kMac: {
      por::PorParams params;
      params.ecc_data_blocks = 48;
      params.ecc_parity_blocks = 16;
      w.provider = std::make_unique<CloudProvider>(
          CloudProvider::Config{.name = "dc", .location = kSite}, w.clock);
      const por::PorEncoder encoder(params);
      const por::EncodedFile encoded =
          encoder.encode(rng.next_bytes(30000), 1, kMaster);
      w.provider->store(encoded);
      w.record = FileRecord{1, encoded.n_segments, 0};
      w.channel = lan(w.provider->handler());
      VerifierDevice::Config vcfg;
      vcfg.position = kSite;
      w.verifier =
          std::make_unique<VerifierDevice>(vcfg, *w.channel, *w.timer);
      w.scheme = std::make_unique<MacAuditScheme>(
          base_config(*w.verifier, nonce_capacity), params);
      w.tamper_all = [&w] {
        for (std::uint64_t i = 0; i < w.record.n_segments; ++i) {
          w.provider->tamper_segment(w.record.file_id, i, 0xff);
        }
      };
      break;
    }
    case Flavour::kSentinel: {
      const por::SentinelParams params{.block_size = 16, .n_sentinels = 300};
      w.provider = std::make_unique<CloudProvider>(
          CloudProvider::Config{.name = "dc", .location = kSite}, w.clock);
      const por::SentinelPor por(params);
      const por::SentinelEncoded encoded =
          por.encode(rng.next_bytes(20000), 2, kMaster);
      w.provider->store_blocks(2, encoded.blocks, params.block_size);
      w.record = SentinelAuditScheme::file_record(encoded);
      w.channel = lan(w.provider->handler());
      VerifierDevice::Config vcfg;
      vcfg.position = kSite;
      w.verifier =
          std::make_unique<VerifierDevice>(vcfg, *w.channel, *w.timer);
      w.scheme = std::make_unique<SentinelAuditScheme>(
          base_config(*w.verifier, nonce_capacity), params);
      w.tamper_all = [&w] {
        for (std::uint64_t i = 0; i < w.record.n_segments; ++i) {
          w.provider->tamper_segment(w.record.file_id, i, 0xff);
        }
      };
      break;
    }
    case Flavour::kDynamic: {
      por::PorParams params;
      params.ecc_data_blocks = 48;
      params.ecc_parity_blocks = 16;
      params.tag.tag_bits = 64;
      const por::PorEncoder encoder(params);
      por::EncodedFile encoded =
          encoder.encode(rng.next_bytes(30000), 3, kMaster);
      w.dyn_provider =
          std::make_unique<por::DynamicPorProvider>(std::move(encoded));
      w.dyn_service = std::make_unique<DynamicProviderService>(
          *w.dyn_provider, w.clock,
          storage::DiskModel(storage::wd2500jd()));
      w.channel = lan(w.dyn_service->handler());
      VerifierDevice::Config vcfg;
      vcfg.position = kSite;
      w.verifier =
          std::make_unique<VerifierDevice>(vcfg, *w.channel, *w.timer);
      auto scheme = std::make_unique<DynamicAuditScheme>(
          base_config(*w.verifier, nonce_capacity), params);
      w.record = scheme->register_file(3, w.dyn_provider->root(),
                                       w.dyn_provider->n_segments());
      w.scheme = std::move(scheme);
      w.tamper_all = [&w] {
        for (std::uint64_t i = 0; i < w.record.n_segments; ++i) {
          w.dyn_provider->tamper(i, 0, 0xff);
        }
      };
      break;
    }
  }
  return world;
}

class SchemeConformance : public ::testing::TestWithParam<Flavour> {};

TEST_P(SchemeConformance, HonestAuditAccepted) {
  auto world = make_world(GetParam());
  const AuditReport report = world->run(10);
  EXPECT_TRUE(report.accepted) << report.summary();
  EXPECT_EQ(report.bad_tags, 0u);
  EXPECT_GT(report.bytes_exchanged, 0u);
}

TEST_P(SchemeConformance, ReplayRejected) {
  auto world = make_world(GetParam());
  const AuditRequest request = world->scheme->make_request(world->record, 5);
  const SignedTranscript transcript = world->verifier->run_audit(request);
  EXPECT_TRUE(world->scheme->verify(world->record, transcript).accepted);
  const AuditReport replay = world->scheme->verify(world->record, transcript);
  EXPECT_FALSE(replay.accepted);
  EXPECT_TRUE(replay.failed(AuditFailure::kNonceMismatch));
}

TEST_P(SchemeConformance, TamperDetected) {
  auto world = make_world(GetParam());
  world->tamper_all();
  const AuditReport report = world->run(10);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kTag)) << report.summary();
  EXPECT_GT(report.bad_tags, 0u);
}

TEST_P(SchemeConformance, TimingEnforced) {
  auto world = make_world(GetParam());
  world->scheme->set_policy(LatencyPolicy{Millis{0.01}, Millis{0.01},
                                          Millis{0}});
  const AuditReport report = world->run(5);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kTiming)) << report.summary();
}

TEST_P(SchemeConformance, GpsSpoofDetected) {
  auto world = make_world(GetParam());
  world->verifier->gps().spoof({-33.87, 151.21});  // Sydney, ~730 km off
  const AuditReport report = world->run(5);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kPosition)) << report.summary();
}

TEST_P(SchemeConformance, ForeignFileRejected) {
  auto world = make_world(GetParam());
  const AuditRequest request = world->scheme->make_request(world->record, 5);
  const SignedTranscript transcript = world->verifier->run_audit(request);
  FileRecord other = world->record;
  other.file_id += 1000;
  const AuditReport report = world->scheme->verify(other, transcript);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kNonceMismatch));
  // The foreign verify must not have consumed the nonce: the genuine file
  // still verifies.
  EXPECT_TRUE(world->scheme->verify(world->record, transcript).accepted);
}

TEST_P(SchemeConformance, NonceLedgerBoundsOutstandingRequests) {
  // Regression for the unbounded outstanding_* sets: issue far more
  // requests than the cap, never verifying; the ledger stays bounded and
  // the oldest transcript is no longer accepted while the newest still is.
  auto world = make_world(GetParam(), /*nonce_capacity=*/4);
  const AuditRequest oldest =
      world->scheme->make_request(world->record, 3);
  const SignedTranscript oldest_transcript =
      world->verifier->run_audit(oldest);
  AuditRequest newest = oldest;
  for (int i = 0; i < 20; ++i) {
    newest = world->scheme->make_request(world->record, 3);
  }
  EXPECT_LE(world->scheme->nonces().outstanding(), 4u);
  EXPECT_GE(world->scheme->nonces().expired(), 17u);

  const AuditReport stale =
      world->scheme->verify(world->record, oldest_transcript);
  EXPECT_FALSE(stale.accepted);
  EXPECT_TRUE(stale.failed(AuditFailure::kNonceMismatch));

  const SignedTranscript fresh_transcript = world->verifier->run_audit(newest);
  EXPECT_TRUE(world->scheme->verify(world->record, fresh_transcript).accepted);
}

TEST_P(SchemeConformance, RequestValidation) {
  auto world = make_world(GetParam());
  EXPECT_THROW(world->scheme->make_request(world->record, 0),
               InvalidArgument);
  FileRecord empty = world->record;
  empty.n_segments = 0;
  EXPECT_THROW(world->scheme->make_request(empty, 5), InvalidArgument);
}

TEST_P(SchemeConformance, EmptyMasterKeyRejected) {
  auto world = make_world(GetParam());
  AuditorConfig cfg = world->scheme->config();
  cfg.master_key = {};
  switch (GetParam()) {
    case Flavour::kMac:
      EXPECT_THROW(MacAuditScheme(cfg, por::PorParams{}), InvalidArgument);
      break;
    case Flavour::kSentinel:
      EXPECT_THROW(SentinelAuditScheme(cfg, por::SentinelParams{}),
                   InvalidArgument);
      break;
    case Flavour::kDynamic:
      EXPECT_THROW(DynamicAuditScheme(cfg, por::PorParams{}),
                   InvalidArgument);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFlavours, SchemeConformance,
                         ::testing::Values(Flavour::kMac, Flavour::kSentinel,
                                           Flavour::kDynamic),
                         [](const ::testing::TestParamInfo<Flavour>& info) {
                           return flavour_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Concurrent audits on distinct FileRecords are independent — the
// thread-safety contract documented in scheme.hpp, which the sharded audit
// engine relies on when one scheme instance serves registrations on
// different shards. One scheme, several files, one thread per file
// hammering make_request -> run_audit -> verify. (TSan runs this suite.)
// ---------------------------------------------------------------------------

/// One file's private timed path: its own clock, provider, channel and
/// verifier device. All devices share the default burned-in signer seed,
/// so the single scheme's configured public key matches every device.
struct FileWorld {
  SimClock clock;
  std::unique_ptr<net::SimAuditTimer> timer;
  std::unique_ptr<CloudProvider> provider;
  std::unique_ptr<por::DynamicPorProvider> dyn_provider;
  std::unique_ptr<DynamicProviderService> dyn_service;
  std::unique_ptr<net::SimRequestChannel> channel;
  std::unique_ptr<VerifierDevice> verifier;
  FileRecord record;
};

struct SharedSchemeWorlds {
  std::unique_ptr<AuditScheme> scheme;
  std::vector<std::unique_ptr<FileWorld>> worlds;
};

SharedSchemeWorlds make_shared_scheme_worlds(Flavour flavour,
                                             unsigned n_files,
                                             unsigned sentinels_per_file) {
  SharedSchemeWorlds out;
  Rng rng(41);
  por::PorParams params;
  params.ecc_data_blocks = 16;
  params.ecc_parity_blocks = 4;
  const por::SentinelParams sentinel_params{.block_size = 16,
                                            .n_sentinels = sentinels_per_file};

  for (unsigned i = 0; i < n_files; ++i) {
    const std::uint64_t file_id = 101 + i;
    auto world = std::make_unique<FileWorld>();
    FileWorld& w = *world;
    w.timer = std::make_unique<net::SimAuditTimer>(w.clock);
    const Bytes content = rng.next_bytes(1500);
    const auto lan = [&w, file_id](net::RequestHandler handler) {
      return std::make_unique<net::SimRequestChannel>(
          w.clock,
          net::lan_latency(net::LanModel{}, Kilometers{0.1}, file_id),
          std::move(handler));
    };
    switch (flavour) {
      case Flavour::kMac: {
        w.provider = std::make_unique<CloudProvider>(
            CloudProvider::Config{.name = "dc", .location = kSite}, w.clock);
        const por::EncodedFile encoded =
            por::PorEncoder(params).encode(content, file_id, kMaster);
        w.provider->store(encoded);
        w.record = FileRecord{file_id, encoded.n_segments, 0};
        w.channel = lan(w.provider->handler());
        break;
      }
      case Flavour::kSentinel: {
        w.provider = std::make_unique<CloudProvider>(
            CloudProvider::Config{.name = "dc", .location = kSite}, w.clock);
        const por::SentinelEncoded encoded =
            por::SentinelPor(sentinel_params).encode(content, file_id,
                                                     kMaster);
        w.provider->store_blocks(file_id, encoded.blocks,
                                 sentinel_params.block_size);
        w.record = SentinelAuditScheme::file_record(encoded);
        w.channel = lan(w.provider->handler());
        break;
      }
      case Flavour::kDynamic: {
        w.dyn_provider = std::make_unique<por::DynamicPorProvider>(
            por::PorEncoder(params).encode(content, file_id, kMaster));
        w.dyn_service = std::make_unique<DynamicProviderService>(
            *w.dyn_provider, w.clock,
            storage::DiskModel(storage::wd2500jd()));
        w.channel = lan(w.dyn_service->handler());
        break;
      }
    }
    VerifierDevice::Config vcfg;  // default signer seed => shared pk
    vcfg.position = kSite;
    vcfg.signer_height = 6;  // 64 audits per device; cheap keygen
    w.verifier = std::make_unique<VerifierDevice>(vcfg, *w.channel, *w.timer);
    out.worlds.push_back(std::move(world));
  }

  const AuditorConfig cfg =
      base_config(*out.worlds.front()->verifier, NonceLedger::kDefaultCapacity);
  switch (flavour) {
    case Flavour::kMac:
      out.scheme = std::make_unique<MacAuditScheme>(cfg, params);
      break;
    case Flavour::kSentinel:
      out.scheme =
          std::make_unique<SentinelAuditScheme>(cfg, sentinel_params);
      break;
    case Flavour::kDynamic: {
      auto scheme = std::make_unique<DynamicAuditScheme>(cfg, params);
      for (unsigned i = 0; i < n_files; ++i) {
        FileWorld& w = *out.worlds[i];
        w.record = scheme->register_file(101 + i, w.dyn_provider->root(),
                                         w.dyn_provider->n_segments());
      }
      out.scheme = std::move(scheme);
      break;
    }
  }
  return out;
}

class SchemeConcurrency : public ::testing::TestWithParam<Flavour> {};

TEST_P(SchemeConcurrency, DistinctFileAuditsAreIndependent) {
  constexpr unsigned kFiles = 4;
  constexpr unsigned kAuditsPerFile = 6;
  constexpr std::uint32_t kRounds = 4;
  SharedSchemeWorlds fx = make_shared_scheme_worlds(
      GetParam(), kFiles, /*sentinels_per_file=*/kAuditsPerFile * kRounds);

  std::atomic<unsigned> accepted{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(fx.worlds.size());
    for (auto& world : fx.worlds) {
      threads.emplace_back([&accepted, &fx, w = world.get()] {
        for (unsigned i = 0; i < kAuditsPerFile; ++i) {
          const AuditRequest request =
              fx.scheme->make_request(w->record, kRounds);
          const SignedTranscript transcript = w->verifier->run_audit(request);
          if (fx.scheme->verify(w->record, transcript).accepted) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // join
  EXPECT_EQ(accepted.load(), kFiles * kAuditsPerFile);
  // Every issued nonce was consumed exactly once across all threads.
  EXPECT_EQ(fx.scheme->nonces().outstanding(), 0u);
  EXPECT_EQ(fx.scheme->nonces().expired(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFlavours, SchemeConcurrency,
                         ::testing::Values(Flavour::kMac, Flavour::kSentinel,
                                           Flavour::kDynamic),
                         [](const ::testing::TestParamInfo<Flavour>& info) {
                           return flavour_name(info.param);
                         });

}  // namespace
}  // namespace geoproof::core

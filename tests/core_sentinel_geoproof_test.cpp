// End-to-end tests of the sentinel-variant GeoProof (§IV's original
// Juels-Kaliski flavour under the timed protocol).
#include "core/sentinel_geoproof.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/provider.hpp"
#include "net/channel.hpp"

namespace geoproof::core {
namespace {

const Bytes kMaster = bytes_of("sentinel geoproof master");

struct SentinelWorld {
  por::SentinelParams params{.block_size = 16, .n_sentinels = 200};
  SimClock clock;
  CloudProvider provider;
  std::unique_ptr<net::SimRequestChannel> channel;
  net::SimAuditTimer timer{clock};
  std::unique_ptr<VerifierDevice> verifier;
  std::unique_ptr<SentinelAuditor> auditor;
  FileRecord record;
  por::SentinelEncoded encoded;

  explicit SentinelWorld(net::GeoPoint site = {-27.47, 153.02})
      : provider(
            CloudProvider::Config{.name = "dc", .location = site},
            clock) {
    Rng rng(3);
    const por::SentinelPor por(params);
    encoded = por.encode(rng.next_bytes(40000), 9, kMaster);
    provider.store_blocks(9, encoded.blocks, params.block_size);
    record = SentinelAuditScheme::file_record(encoded);

    net::LanModelParams lan;
    channel = std::make_unique<net::SimRequestChannel>(
        clock, net::lan_latency(net::LanModel(lan), Kilometers{0.1}, 5),
        provider.handler());
    VerifierDevice::Config vcfg;
    vcfg.position = site;
    verifier = std::make_unique<VerifierDevice>(vcfg, *channel, timer);

    SentinelAuditor::Config acfg;
    acfg.params = params;
    acfg.master_key = kMaster;
    acfg.verifier_pk = verifier->public_key();
    acfg.expected_position = site;
    acfg.policy = LatencyPolicy::for_disk(storage::wd2500jd());
    auditor = std::make_unique<SentinelAuditor>(acfg);
  }

  AuditReport run(unsigned count) {
    const AuditRequest request = auditor->make_request(record, count);
    const SignedTranscript transcript = verifier->run_audit(request);
    return auditor->verify(record, transcript);
  }
};

TEST(SentinelGeoProof, HonestProviderAccepted) {
  SentinelWorld world;
  const AuditReport report = world.run(20);
  EXPECT_TRUE(report.accepted) << report.summary();
  EXPECT_EQ(report.bad_tags, 0u);
}

TEST(SentinelGeoProof, SentinelsAreConsumed) {
  SentinelWorld world;
  EXPECT_EQ(world.auditor->sentinels_remaining(9), 200u);
  (void)world.run(20);
  EXPECT_EQ(world.auditor->sentinels_remaining(9), 180u);
  // Exhausting the supply throws.
  (void)world.run(180);
  EXPECT_EQ(world.auditor->sentinels_remaining(9), 0u);
  EXPECT_THROW(world.auditor->make_request(world.record, 1), CryptoError);
}

TEST(SentinelGeoProof, RepeatedAuditsUseFreshSentinels) {
  SentinelWorld world;
  const auto r1 = world.auditor->make_request(world.record, 5);
  const auto r2 = world.auditor->make_request(world.record, 5);
  // Different sentinels -> different positions (with overwhelming prob.).
  EXPECT_NE(r1.positions, r2.positions);
}

TEST(SentinelGeoProof, CorruptedSentinelBlockDetected) {
  SentinelWorld world;
  // Corrupt the blocks at the first few sentinel positions.
  const por::SentinelPor por(world.params);
  for (unsigned j = 0; j < 5; ++j) {
    const std::uint64_t pos =
        por.sentinel_position(world.encoded, kMaster, j);
    world.provider.tamper_segment(9, pos, 0xff);
  }
  const AuditReport report = world.run(5);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kTag));
  EXPECT_EQ(report.bad_tags, 5u);
}

TEST(SentinelGeoProof, BulkCorruptionHitsSentinels) {
  // The sentinel design's point: the provider cannot tell sentinels from
  // data, so corrupting 30% of blocks hits ~30% of challenged sentinels.
  SentinelWorld world;
  Rng rng(9);
  for (std::uint64_t i = 0; i < world.encoded.total_blocks; ++i) {
    if (rng.next_bool(0.3)) world.provider.tamper_segment(9, i, 0x55);
  }
  const AuditReport report = world.run(40);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.bad_tags, 3u);
  EXPECT_LT(report.bad_tags, 25u);
}

TEST(SentinelGeoProof, GpsSpoofDetected) {
  SentinelWorld world;
  world.verifier->gps().spoof({-33.87, 151.21});
  const AuditReport report = world.run(5);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kPosition));
}

TEST(SentinelGeoProof, ReplayRejected) {
  SentinelWorld world;
  const auto request = world.auditor->make_request(world.record, 5);
  const SignedTranscript transcript = world.verifier->run_audit(request);
  EXPECT_TRUE(world.auditor->verify(world.record, transcript).accepted);
  const AuditReport replay = world.auditor->verify(world.record, transcript);
  EXPECT_FALSE(replay.accepted);
  EXPECT_TRUE(replay.failed(AuditFailure::kNonceMismatch));
}

TEST(SentinelGeoProof, TimingStillEnforced) {
  // Same audit, but the provider's disk is replaced by an implausibly slow
  // budget: every round violates.
  SentinelWorld world;
  SentinelAuditor::Config acfg;
  acfg.params = world.params;
  acfg.master_key = kMaster;
  acfg.verifier_pk = world.verifier->public_key();
  acfg.expected_position = {-27.47, 153.02};
  acfg.policy = LatencyPolicy{Millis{0.01}, Millis{0.01}, Millis{0}};
  SentinelAuditor strict(acfg);
  const auto request = strict.make_request(world.record, 5);
  const SignedTranscript transcript = world.verifier->run_audit(request);
  const AuditReport report = strict.verify(world.record, transcript);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kTiming));
}

TEST(SentinelGeoProof, ConfigValidated) {
  SentinelAuditor::Config cfg;
  cfg.master_key = {};
  EXPECT_THROW(SentinelAuditor{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace geoproof::core

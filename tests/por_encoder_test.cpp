#include "por/encoder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace geoproof::por {
namespace {

const Bytes kMaster = bytes_of("master key for tests");

PorParams small_params() {
  // Small ECC geometry keeps exhaustive tests fast while preserving every
  // pipeline property; paper-scale geometry is exercised separately.
  PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  p.tag.tag_bits = 64;  // wide tags: negative checks must never collide
  return p;
}

TEST(PorParams, DefaultsMatchPaperExample) {
  const PorParams p;
  EXPECT_EQ(p.block_size, 16u);          // ℓ_B = 128 bits
  EXPECT_EQ(p.blocks_per_segment, 5u);   // v = 5
  EXPECT_EQ(p.tag.tag_bits, 20u);        // ℓ_τ = 20 bits
  EXPECT_EQ(p.ecc_data_blocks, 223u);
  EXPECT_EQ(p.ecc_parity_blocks, 32u);
  // Paper: segment = 5*128 + 20 = 660 bits; stored byte-aligned as 83 bytes
  // (5*16 + 3).
  EXPECT_EQ(p.segment_bytes(), 83u);
}

TEST(PorParams, ValidationCatchesNonsense) {
  PorParams p;
  p.block_size = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = PorParams{};
  p.ecc_data_blocks = 300;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = PorParams{};
  p.tag.tag_bits = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(PorKeys, IndependentPerFile) {
  const auto a = PorKeys::derive(kMaster, 1, crypto::TagParams{});
  const auto b = PorKeys::derive(kMaster, 2, crypto::TagParams{});
  EXPECT_NE(a.enc_key, b.enc_key);
  EXPECT_NE(a.prp_key, b.prp_key);
  EXPECT_NE(a.mac_key, b.mac_key);
  EXPECT_NE(a.enc_nonce, b.enc_nonce);
}

TEST(PorKeys, DomainsSeparated) {
  const auto k = PorKeys::derive(kMaster, 1, crypto::TagParams{});
  const Bytes prp16(k.prp_key.begin(), k.prp_key.begin() + 16);
  const Bytes mac16(k.mac_key.begin(), k.mac_key.begin() + 16);
  EXPECT_NE(k.enc_key, prp16);
  EXPECT_NE(k.enc_key, mac16);
}

TEST(SampleChallenge, DistinctAndInRange) {
  Rng rng(1);
  const auto c = sample_challenge(1000, 100, rng);
  EXPECT_EQ(c.size(), 100u);
  std::set<std::uint64_t> uniq(c.begin(), c.end());
  EXPECT_EQ(uniq.size(), 100u);
  for (const auto i : c) EXPECT_LT(i, 1000u);
}

TEST(SampleChallenge, KAboveNReturnsAll) {
  Rng rng(2);
  const auto c = sample_challenge(10, 50, rng);
  EXPECT_EQ(c.size(), 10u);
}

TEST(SampleChallenge, CoversTheSpace) {
  // Across many draws every index should appear (uniformity smoke test).
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    for (const auto v : sample_challenge(50, 5, rng)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(SampleChallenge, ZeroSegmentsThrows) {
  Rng rng(4);
  EXPECT_THROW(sample_challenge(0, 1, rng), InvalidArgument);
}

TEST(PorEncoder, EncodeShapes) {
  const PorEncoder enc(small_params());
  Rng rng(5);
  const Bytes file = rng.next_bytes(10000);
  const EncodedFile ef = enc.encode(file, 42, kMaster);

  EXPECT_EQ(ef.file_id, 42u);
  EXPECT_EQ(ef.original_size, 10000u);
  EXPECT_EQ(ef.n_data_blocks, 625u);  // ceil(10000/16)
  // 625 data blocks -> 13 full chunks of 48 + remainder 1; encoded =
  // 13*64 + (1+16) = 849.
  EXPECT_EQ(ef.n_encoded_blocks, 849u);
  // Padded to a multiple of v=5: 850.
  EXPECT_EQ(ef.n_permuted_blocks, 850u);
  EXPECT_EQ(ef.n_segments, 170u);
  EXPECT_EQ(ef.segments.size(), 170u);
  for (const Bytes& s : ef.segments) {
    EXPECT_EQ(s.size(), ef.segment_bytes);
  }
}

TEST(PorEncoder, EmptyFileStillStored) {
  const PorEncoder enc(small_params());
  const EncodedFile ef = enc.encode({}, 1, kMaster);
  EXPECT_GT(ef.n_segments, 0u);
  const PorExtractor ext(small_params());
  const auto rep = ext.extract(ef, kMaster);
  EXPECT_TRUE(rep.file.empty());
}

TEST(PorEncoder, CiphertextHidesPlaintext) {
  const PorEncoder enc(small_params());
  const Bytes file(4096, 0x00);  // highly structured plaintext
  const EncodedFile ef = enc.encode(file, 7, kMaster);
  // No stored segment should consist of the plaintext's zero blocks.
  std::size_t zero_heavy = 0;
  for (const Bytes& s : ef.segments) {
    std::size_t zeros = 0;
    for (const std::uint8_t b : s) zeros += b == 0;
    if (zeros > s.size() / 2) ++zero_heavy;
  }
  EXPECT_LT(zero_heavy, ef.segments.size() / 8);
}

TEST(PorEncoder, DeterministicForSameInputs) {
  const PorEncoder enc(small_params());
  const Bytes file = bytes_of("same file");
  const EncodedFile a = enc.encode(file, 3, kMaster);
  const EncodedFile b = enc.encode(file, 3, kMaster);
  EXPECT_EQ(a.segments, b.segments);
}

TEST(PorEncoder, FileIdChangesLayout) {
  const PorEncoder enc(small_params());
  const Bytes file = bytes_of("same file");
  const EncodedFile a = enc.encode(file, 3, kMaster);
  const EncodedFile b = enc.encode(file, 4, kMaster);
  EXPECT_NE(a.segments, b.segments);
}

TEST(SegmentVerifier, AcceptsAllGenuineSegments) {
  const PorEncoder enc(small_params());
  Rng rng(6);
  const EncodedFile ef = enc.encode(rng.next_bytes(5000), 9, kMaster);
  const SegmentVerifier ver(small_params(), kMaster, 9);
  for (std::uint64_t i = 0; i < ef.n_segments; ++i) {
    EXPECT_TRUE(ver.verify(i, ef.segments[static_cast<std::size_t>(i)]))
        << "segment " << i;
  }
}

TEST(SegmentVerifier, RejectsTamperedData) {
  const PorEncoder enc(small_params());
  Rng rng(7);
  const EncodedFile ef = enc.encode(rng.next_bytes(5000), 9, kMaster);
  const SegmentVerifier ver(small_params(), kMaster, 9);
  Bytes seg = ef.segments[3];
  seg[10] ^= 0x01;
  EXPECT_FALSE(ver.verify(3, seg));
}

TEST(SegmentVerifier, RejectsIndexSwap) {
  // Serving segment 5 in answer to challenge 3 must fail even though the
  // segment itself is genuine - the tag binds the index.
  const PorEncoder enc(small_params());
  Rng rng(8);
  const EncodedFile ef = enc.encode(rng.next_bytes(5000), 9, kMaster);
  const SegmentVerifier ver(small_params(), kMaster, 9);
  EXPECT_FALSE(ver.verify(3, ef.segments[5]));
}

TEST(SegmentVerifier, RejectsWrongSize) {
  const SegmentVerifier ver(small_params(), kMaster, 9);
  EXPECT_FALSE(ver.verify(0, Bytes(10, 0)));
  EXPECT_FALSE(ver.verify(0, Bytes(1000, 0)));
}

TEST(SegmentVerifier, RejectsCrossFileReplay) {
  // A segment from file 9 served for file 10 fails (fid in the MAC).
  const PorEncoder enc(small_params());
  Rng rng(9);
  const EncodedFile ef = enc.encode(rng.next_bytes(2000), 9, kMaster);
  const SegmentVerifier ver10(small_params(), kMaster, 10);
  EXPECT_FALSE(ver10.verify(0, ef.segments[0]));
}

TEST(PorExtractor, CleanRoundTrip) {
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  Rng rng(10);
  for (const std::size_t size : {1u, 16u, 100u, 4096u, 10000u}) {
    const Bytes file = rng.next_bytes(size);
    const EncodedFile ef = enc.encode(file, size, kMaster);
    const auto rep = ext.extract(ef, kMaster);
    EXPECT_EQ(rep.file, file) << "size " << size;
    EXPECT_EQ(rep.bad_segments, 0u);
  }
}

TEST(PorExtractor, RepairsCorruptedSegments) {
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  Rng rng(11);
  const Bytes file = rng.next_bytes(20000);
  EncodedFile ef = enc.encode(file, 1, kMaster);

  // Corrupt 6 whole segments (tags break -> their blocks become erasures;
  // erasure budget is 16 per chunk so scattered damage is repairable).
  for (const std::size_t idx : {3u, 20u, 50u, 80u, 120u, 200u}) {
    if (idx >= ef.segments.size()) continue;
    for (auto& b : ef.segments[idx]) b ^= 0xa5;
  }
  const auto rep = ext.extract(ef, kMaster);
  EXPECT_EQ(rep.file, file);
  EXPECT_GT(rep.bad_segments, 0u);
  EXPECT_GT(rep.repaired_symbols, 0u);
}

TEST(PorExtractor, MassiveCorruptionThrows) {
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  Rng rng(12);
  const Bytes file = rng.next_bytes(20000);
  EncodedFile ef = enc.encode(file, 1, kMaster);
  // Destroy half of everything: far beyond any repair budget.
  for (std::size_t i = 0; i < ef.segments.size(); i += 2) {
    for (auto& b : ef.segments[i]) b ^= 0xff;
  }
  EXPECT_THROW(ext.extract(ef, kMaster), DecodeError);
}

TEST(PorExtractor, SilentBlockCorruptionStillRepaired) {
  // Corruption that keeps the tag boundary intact but flips data bytes is
  // caught by the tag check and repaired like any erasure.
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  Rng rng(13);
  const Bytes file = rng.next_bytes(15000);
  EncodedFile ef = enc.encode(file, 2, kMaster);
  ef.segments[7][0] ^= 0x80;  // single-bit damage
  const auto rep = ext.extract(ef, kMaster);
  EXPECT_EQ(rep.file, file);
  EXPECT_EQ(rep.bad_segments, 1u);
}

TEST(PorExtractor, WrongKeyFails) {
  const PorEncoder enc(small_params());
  const PorExtractor ext(small_params());
  Rng rng(14);
  const Bytes file = rng.next_bytes(5000);
  const EncodedFile ef = enc.encode(file, 1, kMaster);
  // With the wrong master every tag fails; all blocks become erasures and
  // decoding cannot succeed.
  EXPECT_THROW(ext.extract(ef, bytes_of("wrong master")), Error);
}

TEST(PorEncoder, PaperScaleGeometryExpansion) {
  // Full (255,223) geometry on a ~1 MiB file. The paper quotes "about
  // 16.5%" total overhead with bit-packed 20-bit tags (660/640 bits per
  // segment). This implementation stores tags byte-aligned (3 bytes per
  // 80-byte segment), so the exact expansion is
  //   (255/223) * (83/80) = 1.1864  (+18.6%),
  // versus the bit-packed ideal (255/223) * (660/640) = 1.1793. Same
  // shape, slightly above the paper's rounded arithmetic; see
  // EXPERIMENTS.md E1 for the side-by-side.
  PorParams p;  // paper defaults
  const PorEncoder enc(p);
  Rng rng(15);
  const Bytes file = rng.next_bytes(1 << 20);
  const EncodedFile ef = enc.encode(file, 1, kMaster);
  EXPECT_NEAR(ef.expansion(), (255.0 / 223.0) * (83.0 / 80.0), 0.005);
  const PorExtractor ext(p);
  const auto rep = ext.extract(ef, kMaster);
  EXPECT_EQ(rep.file, file);
}

}  // namespace
}  // namespace geoproof::por

#include "por/sentinel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "por/analysis.hpp"

namespace geoproof::por {
namespace {

const Bytes kMaster = bytes_of("sentinel master key");

TEST(SentinelPor, ParamsValidated) {
  EXPECT_THROW(SentinelPor(SentinelParams{.block_size = 0}), InvalidArgument);
  EXPECT_THROW(SentinelPor(SentinelParams{.n_sentinels = 0}), InvalidArgument);
}

TEST(SentinelPor, EncodeShapes) {
  const SentinelPor por(SentinelParams{.n_sentinels = 100});
  Rng rng(1);
  const Bytes file = rng.next_bytes(3210);
  const auto enc = por.encode(file, 5, kMaster);
  EXPECT_EQ(enc.n_file_blocks, 201u);  // ceil(3210/16)
  EXPECT_EQ(enc.total_blocks, 301u);
  EXPECT_EQ(enc.blocks.size(), 301u);
  for (const Bytes& b : enc.blocks) EXPECT_EQ(b.size(), 16u);
}

TEST(SentinelPor, DecodeRoundTrip) {
  const SentinelPor por(SentinelParams{.n_sentinels = 50});
  Rng rng(2);
  for (const std::size_t size : {1u, 16u, 1000u, 5000u}) {
    const Bytes file = rng.next_bytes(size);
    const auto enc = por.encode(file, size, kMaster);
    EXPECT_EQ(por.decode(enc, kMaster), file);
  }
}

TEST(SentinelPor, ChallengeAcceptsHonestProvider) {
  const SentinelPor por(SentinelParams{.n_sentinels = 64});
  Rng rng(3);
  const auto enc = por.encode(rng.next_bytes(4000), 1, kMaster);
  for (unsigned j = 0; j < 64; ++j) {
    const std::uint64_t pos = por.sentinel_position(enc, kMaster, j);
    ASSERT_LT(pos, enc.total_blocks);
    EXPECT_TRUE(por.check(enc, kMaster, j,
                          enc.blocks[static_cast<std::size_t>(pos)]))
        << "sentinel " << j;
  }
}

TEST(SentinelPor, SentinelPositionsSpreadByPermutation) {
  // Sentinels are appended *after* the file blocks pre-permutation; the PRP
  // must scatter them across the whole stored range, otherwise the provider
  // could archive the "cold" prefix.
  const SentinelPor por(SentinelParams{.n_sentinels = 200});
  Rng rng(4);
  const auto enc = por.encode(rng.next_bytes(100000), 1, kMaster);
  std::size_t in_first_half = 0;
  for (unsigned j = 0; j < 200; ++j) {
    if (por.sentinel_position(enc, kMaster, j) < enc.total_blocks / 2) {
      ++in_first_half;
    }
  }
  EXPECT_GT(in_first_half, 60u);
  EXPECT_LT(in_first_half, 140u);
}

TEST(SentinelPor, TamperingDetectedAtExpectedRate) {
  // Corrupt a fraction of blocks; the chance a random sentinel is hit
  // matches the corruption rate, and a challenge of q sentinels detects
  // with probability ~ 1-(1-rho)^q (the JK detection bound).
  const unsigned n_sent = 400;
  const SentinelPor por(SentinelParams{.n_sentinels = n_sent});
  Rng rng(5);
  const auto clean = por.encode(rng.next_bytes(60000), 1, kMaster);

  auto enc = clean;
  const double rho = 0.10;
  std::size_t corrupted = 0;
  for (auto& blk : enc.blocks) {
    if (rng.next_bool(rho)) {
      blk[0] ^= 0xff;
      ++corrupted;
    }
  }
  ASSERT_GT(corrupted, 0u);

  // Count which sentinels got hit.
  unsigned hit = 0;
  for (unsigned j = 0; j < n_sent; ++j) {
    const std::uint64_t pos = por.sentinel_position(enc, kMaster, j);
    if (!por.check(enc, kMaster, j, enc.blocks[static_cast<std::size_t>(pos)])) {
      ++hit;
    }
  }
  const double hit_rate = static_cast<double>(hit) / n_sent;
  EXPECT_NEAR(hit_rate, rho, 0.06);

  // A 20-sentinel challenge should detect with ~ 1-(0.9)^20 = 87.8%.
  const double want = detection_probability_iid(rho, 20);
  EXPECT_NEAR(want, 0.878, 0.01);
}

TEST(SentinelPor, ProviderCannotIdentifySentinels) {
  // Statistical indistinguishability smoke test: encrypted file blocks and
  // PRF sentinels should have the same byte-value distribution. Compare
  // mean byte values of the two populations.
  const SentinelPor por(SentinelParams{.n_sentinels = 500});
  Rng rng(6);
  const Bytes file(60000, 0x00);  // adversarially structured plaintext
  const auto enc = por.encode(file, 1, kMaster);

  std::set<std::uint64_t> sentinel_pos;
  for (unsigned j = 0; j < 500; ++j) {
    sentinel_pos.insert(por.sentinel_position(enc, kMaster, j));
  }
  double sum_s = 0, sum_f = 0;
  std::size_t n_s = 0, n_f = 0;
  for (std::uint64_t p = 0; p < enc.total_blocks; ++p) {
    const Bytes& blk = enc.blocks[static_cast<std::size_t>(p)];
    for (const std::uint8_t b : blk) {
      if (sentinel_pos.count(p)) {
        sum_s += b;
        ++n_s;
      } else {
        sum_f += b;
        ++n_f;
      }
    }
  }
  EXPECT_NEAR(sum_s / static_cast<double>(n_s),
              sum_f / static_cast<double>(n_f), 6.0);
}

TEST(SentinelPor, IndexValidation) {
  const SentinelPor por(SentinelParams{.n_sentinels = 10});
  Rng rng(7);
  const auto enc = por.encode(rng.next_bytes(1000), 1, kMaster);
  EXPECT_THROW(por.sentinel_position(enc, kMaster, 10), InvalidArgument);
  EXPECT_THROW(por.sentinel_value(1, kMaster, 10), InvalidArgument);
}

TEST(SentinelPor, WrongKeyWrongPositions) {
  const SentinelPor por(SentinelParams{.n_sentinels = 100});
  Rng rng(8);
  const auto enc = por.encode(rng.next_bytes(10000), 1, kMaster);
  unsigned agree = 0;
  for (unsigned j = 0; j < 100; ++j) {
    if (por.sentinel_position(enc, kMaster, j) ==
        por.sentinel_position(enc, bytes_of("other key"), j)) {
      ++agree;
    }
  }
  EXPECT_LT(agree, 5u);
}

}  // namespace
}  // namespace geoproof::por

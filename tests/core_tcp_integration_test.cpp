// Integration: the full GeoProof protocol engine over a real TCP loopback
// connection with wall-clock timing - the "manual networking" path. The
// provider here serves segments from memory with an injectable artificial
// look-up delay, standing in for a disk at the far end of a socket.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/auditor.hpp"
#include "core/transcript.hpp"
#include "core/verifier.hpp"
#include "net/tcp.hpp"
#include "por/encoder.hpp"

namespace geoproof::core {
namespace {

const Bytes kMaster = bytes_of("tcp-integration-master");

por::PorParams small_params() {
  por::PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  return p;
}

struct TcpWorld {
  por::PorParams params = small_params();
  por::EncodedFile file;
  std::atomic<int> lookup_delay_ms{0};
  std::unique_ptr<net::TcpServer> server;

  explicit TcpWorld(std::uint64_t file_id = 1) {
    Rng rng(1);
    const por::PorEncoder encoder(params);
    file = encoder.encode(rng.next_bytes(30000), file_id, kMaster);
    server = std::make_unique<net::TcpServer>([this](BytesView request) {
      const SegmentRequest req = SegmentRequest::deserialize(request);
      if (req.file_id != file.file_id || req.index >= file.n_segments) {
        throw StorageError("unknown segment");
      }
      const int delay = lookup_delay_ms.load();
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      return file.segments[static_cast<std::size_t>(req.index)];
    });
  }
};

Auditor::Config auditor_config(const TcpWorld& world,
                               const crypto::Digest& verifier_pk,
                               Millis max_lookup) {
  Auditor::Config cfg;
  cfg.por = world.params;
  cfg.master_key = kMaster;
  cfg.verifier_pk = verifier_pk;
  cfg.expected_position = {-27.47, 153.02};
  // Generous network budget: loopback plus scheduler noise.
  cfg.policy = LatencyPolicy{Millis{20.0}, max_lookup, Millis{5.0}};
  return cfg;
}

TEST(TcpIntegration, HonestAuditOverRealSockets) {
  TcpWorld world;
  net::TcpRequestChannel channel("127.0.0.1", world.server->port());
  net::SteadyAuditTimer timer;
  VerifierDevice::Config vcfg;
  vcfg.position = {-27.47, 153.02};
  VerifierDevice verifier(vcfg, channel, timer);

  Auditor auditor(auditor_config(world, verifier.public_key(), Millis{50.0}));
  const Auditor::FileRecord record{world.file.file_id, world.file.n_segments};

  const AuditRequest request = auditor.make_request(record, 15);
  const SignedTranscript transcript = verifier.run_audit(request);
  const AuditReport report = auditor.verify(record, transcript);
  EXPECT_TRUE(report.accepted) << report.summary();
  EXPECT_EQ(report.bad_tags, 0u);
  // Loopback RTTs exist and are sane.
  EXPECT_GT(report.max_rtt.count(), 0.0);
  EXPECT_LT(report.max_rtt.count(), 50.0);
}

TEST(TcpIntegration, SlowLookupsCaughtByWallClock) {
  TcpWorld world;
  world.lookup_delay_ms = 60;  // a "remote" provider: every round slow
  net::TcpRequestChannel channel("127.0.0.1", world.server->port());
  net::SteadyAuditTimer timer;
  VerifierDevice::Config vcfg;
  vcfg.position = {-27.47, 153.02};
  VerifierDevice verifier(vcfg, channel, timer);

  Auditor auditor(auditor_config(world, verifier.public_key(), Millis{10.0}));
  const Auditor::FileRecord record{world.file.file_id, world.file.n_segments};

  const AuditRequest request = auditor.make_request(record, 5);
  const SignedTranscript transcript = verifier.run_audit(request);
  const AuditReport report = auditor.verify(record, transcript);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kTiming)) << report.summary();
  EXPECT_GE(report.max_rtt.count(), 60.0);
}

TEST(TcpIntegration, TranscriptSurvivesWireSerialization) {
  // TPA and verifier on opposite ends: the signed transcript crosses the
  // wire as bytes and verifies after deserialisation.
  TcpWorld world;
  net::TcpRequestChannel channel("127.0.0.1", world.server->port());
  net::SteadyAuditTimer timer;
  VerifierDevice::Config vcfg;
  vcfg.position = {-27.47, 153.02};
  VerifierDevice verifier(vcfg, channel, timer);

  Auditor auditor(auditor_config(world, verifier.public_key(), Millis{50.0}));
  const Auditor::FileRecord record{world.file.file_id, world.file.n_segments};

  const AuditRequest request =
      AuditRequest::deserialize(auditor.make_request(record, 8).serialize());
  const Bytes wire = verifier.run_audit(request).serialize();
  const SignedTranscript transcript = SignedTranscript::deserialize(wire);
  EXPECT_TRUE(auditor.verify(record, transcript).accepted);
}

TEST(TcpIntegration, CorruptSegmentDetectedOverWire) {
  TcpWorld world;
  world.file.segments[4][2] ^= 0x10;  // damage before serving
  net::TcpRequestChannel channel("127.0.0.1", world.server->port());
  net::SteadyAuditTimer timer;
  VerifierDevice::Config vcfg;
  vcfg.position = {-27.47, 153.02};
  VerifierDevice verifier(vcfg, channel, timer);

  Auditor auditor(auditor_config(world, verifier.public_key(), Millis{50.0}));
  const Auditor::FileRecord record{world.file.file_id, world.file.n_segments};

  // Challenge everything so segment 4 is definitely fetched.
  const AuditRequest request = auditor.make_request(
      record, static_cast<std::uint32_t>(world.file.n_segments));
  const SignedTranscript transcript = verifier.run_audit(request);
  const AuditReport report = auditor.verify(record, transcript);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.bad_tags, 1u);
}

}  // namespace
}  // namespace geoproof::core

// Robustness: every deserializer in the protocol survives arbitrary bytes
// by throwing a typed error — never crashing, never accepting garbage.
// A malicious provider or a corrupted link controls these inputs.
//
// This suite is the quick, deterministic slice of the adversarial-input
// story: a fixed budget of seeded random buffers per parser on every CI
// run. The coverage-guided exploration lives in fuzz/ (libFuzzer targets
// over the same parsers plus FrameAssembler); see README "Static analysis
// & fuzzing".
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/transcript.hpp"
#include "crypto/signature.hpp"
#include "fuzz_util.hpp"
#include "por/dynamic.hpp"
#include "por/encoded_io.hpp"

namespace geoproof {
namespace {

using fuzzutil::fuzz_random_buffers;

TEST(WireFuzz, SegmentRequest) {
  fuzz_random_buffers(
      [](const Bytes& b) { (void)core::SegmentRequest::deserialize(b); }, 1);
}

TEST(WireFuzz, AuditRequest) {
  fuzz_random_buffers(
      [](const Bytes& b) { (void)core::AuditRequest::deserialize(b); }, 2);
}

TEST(WireFuzz, AuditTranscript) {
  fuzz_random_buffers(
      [](const Bytes& b) { (void)core::AuditTranscript::deserialize(b); }, 3);
}

TEST(WireFuzz, SignedTranscript) {
  fuzz_random_buffers(
      [](const Bytes& b) { (void)core::SignedTranscript::deserialize(b); }, 4);
}

TEST(WireFuzz, MerkleSignature) {
  fuzz_random_buffers(
      [](const Bytes& b) { (void)crypto::MerkleSignature::deserialize(b); },
      5);
}

TEST(WireFuzz, ReadProof) {
  fuzz_random_buffers(
      [](const Bytes& b) { (void)por::ReadProof::deserialize(b); }, 6);
}

TEST(WireFuzz, EncodedFileContainer) {
  fuzz_random_buffers(
      [](const Bytes& b) { (void)por::deserialize_encoded_file(b); }, 7);
}

TEST(WireFuzz, MutatedValidTranscriptNeverVerifies) {
  // Start from a valid signed transcript, apply random byte flips: the
  // deserializer may accept the bytes, but signature verification must
  // reject every mutant.
  crypto::MerkleSigner signer(bytes_of("fuzz-signer"), 3);
  core::AuditTranscript t;
  t.file_id = 1;
  t.nonce = bytes_of("nonce");
  t.position = {-27.47, 153.02};
  t.challenge = {1, 2, 3};
  t.rtts = {Millis{10}, Millis{11}, Millis{12}};
  t.segments = {bytes_of("a"), bytes_of("b"), bytes_of("c")};
  core::SignedTranscript st;
  st.signature = signer.sign(t.serialize());
  st.transcript = t;
  const Bytes valid_wire = st.serialize();

  Rng rng(8);
  int parsed = 0;
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = valid_wire;
    fuzzutil::mutate_one_byte(rng, mutated);
    try {
      const auto back = core::SignedTranscript::deserialize(mutated);
      ++parsed;
      EXPECT_FALSE(crypto::merkle_verify(signer.public_key(),
                                         back.transcript.serialize(),
                                         back.signature))
          << "mutated transcript verified!";
    } catch (const Error&) {
      // parse rejection is equally fine
    }
  }
  // Many single-byte mutations stay parseable (payload bytes), so the
  // signature check must actually have been exercised.
  EXPECT_GT(parsed, 50);
}

TEST(WireFuzz, TruncationSweepAuditTranscript) {
  // Every strict prefix of a valid transcript must be rejected cleanly.
  core::AuditTranscript t;
  t.file_id = 9;
  t.nonce = bytes_of("n");
  t.challenge = {4};
  t.rtts = {Millis{1}};
  t.segments = {bytes_of("seg")};
  const Bytes wire = t.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(),
                       wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)core::AuditTranscript::deserialize(prefix),
                 SerializeError)
        << "prefix length " << len;
  }
}

}  // namespace
}  // namespace geoproof

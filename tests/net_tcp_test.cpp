#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/errors.hpp"

namespace geoproof::net {
namespace {

/// Raw loopback connection for wire-level edge cases the channel classes
/// refuse to produce (oversized headers, partial frames).
Socket raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return Socket(fd);
}

void raw_send(const Socket& sock, BytesView data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(sock.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

TEST(TcpServer, EchoRoundTrip) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  TcpRequestChannel client("127.0.0.1", server.port());
  EXPECT_EQ(client.request(bytes_of("hello")), bytes_of("hello"));
  EXPECT_EQ(client.request(bytes_of("again")), bytes_of("again"));
}

TEST(TcpServer, EmptyFrames) {
  TcpServer server([](BytesView) { return Bytes{}; });
  TcpRequestChannel client("127.0.0.1", server.port());
  EXPECT_TRUE(client.request({}).empty());
}

TEST(TcpServer, LargePayload) {
  TcpServer server([](BytesView req) {
    Bytes out(req.begin(), req.end());
    out.push_back(0x42);
    return out;
  });
  TcpRequestChannel client("127.0.0.1", server.port());
  const Bytes big(1 << 20, 0xab);  // 1 MiB
  const Bytes resp = client.request(big);
  ASSERT_EQ(resp.size(), big.size() + 1);
  EXPECT_EQ(resp.back(), 0x42);
}

TEST(TcpServer, SequentialClients) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  {
    TcpRequestChannel c1("127.0.0.1", server.port());
    EXPECT_EQ(c1.request(bytes_of("one")), bytes_of("one"));
  }  // c1 disconnects
  TcpRequestChannel c2("127.0.0.1", server.port());
  EXPECT_EQ(c2.request(bytes_of("two")), bytes_of("two"));
}

TEST(TcpServer, ManySmallRequests) {
  TcpServer server([](BytesView req) {
    Bytes out(req.begin(), req.end());
    for (auto& b : out) b = static_cast<std::uint8_t>(b + 1);
    return out;
  });
  TcpRequestChannel client("127.0.0.1", server.port());
  for (int i = 0; i < 200; ++i) {
    const Bytes req = {static_cast<std::uint8_t>(i)};
    const Bytes resp = client.request(req);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0], static_cast<std::uint8_t>(i + 1));
  }
}

TEST(TcpServer, PortZeroReportsKernelChosenPort) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); },
                   TcpServer::Options{.host = "127.0.0.1", .port = 0});
  ASSERT_GT(server.port(), 0);
  TcpRequestChannel client("127.0.0.1", server.port());
  EXPECT_EQ(client.request(bytes_of("ping")), bytes_of("ping"));
}

TEST(TcpServer, ExplicitPortBindsAndRebinds) {
  // Grab a kernel-chosen port, release it, and rebind it explicitly:
  // SO_REUSEADDR means the second bind succeeds even while the first
  // server's accepted connection lingers in TIME_WAIT.
  std::uint16_t port = 0;
  {
    TcpServer first([](BytesView req) { return Bytes(req.begin(), req.end()); });
    port = first.port();
    TcpRequestChannel client("127.0.0.1", port);
    EXPECT_EQ(client.request(bytes_of("one")), bytes_of("one"));
  }
  TcpServer second([](BytesView) { return bytes_of("two"); },
                   TcpServer::Options{.port = port});
  EXPECT_EQ(second.port(), port);
  TcpRequestChannel client("127.0.0.1", port);
  EXPECT_EQ(client.request({}), bytes_of("two"));
}

TEST(TcpServer, BadBindAddressThrows) {
  EXPECT_THROW((TcpServer([](BytesView) { return Bytes{}; },
                          TcpServer::Options{.host = "not-an-address"})),
               NetError);
}

TEST(TcpServer, StopUnblocksAccept) {
  auto server = std::make_unique<TcpServer>(
      [](BytesView req) { return Bytes(req.begin(), req.end()); });
  server->stop();     // no client ever connected
  server.reset();     // must not hang
  SUCCEED();
}

TEST(TcpRequestChannel, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
    dead_port = server.port();
  }  // server gone
  EXPECT_THROW(TcpRequestChannel("127.0.0.1", dead_port), NetError);
}

TEST(TcpRequestChannel, BadAddressThrows) {
  EXPECT_THROW(TcpRequestChannel("not-an-ip", 1234), NetError);
}

TEST(TcpServer, ConcurrentClientsServedInterleaved) {
  // Regression for the historical sequential accept loop: a second client
  // used to block forever while the first held its connection. The
  // multiplexing server must serve both, interleaved, on open
  // connections.
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  TcpRequestChannel c1("127.0.0.1", server.port());
  EXPECT_EQ(c1.request(bytes_of("a1")), bytes_of("a1"));

  TcpRequestChannel c2("127.0.0.1", server.port());  // c1 still connected
  EXPECT_EQ(c2.request(bytes_of("b1")), bytes_of("b1"));
  EXPECT_EQ(c1.request(bytes_of("a2")), bytes_of("a2"));
  EXPECT_EQ(c2.request(bytes_of("b2")), bytes_of("b2"));
}

TEST(TcpServer, ManyConcurrentClients) {
  TcpServer server([](BytesView req) {
    Bytes out(req.begin(), req.end());
    out.push_back(0x01);
    return out;
  });
  std::vector<std::unique_ptr<TcpRequestChannel>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(
        std::make_unique<TcpRequestChannel>("127.0.0.1", server.port()));
  }
  // Round-robin over all held-open connections, twice.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) {
      const Bytes req = {static_cast<std::uint8_t>(i)};
      const Bytes resp = clients[static_cast<std::size_t>(i)]->request(req);
      ASSERT_EQ(resp.size(), 2u);
      EXPECT_EQ(resp[0], static_cast<std::uint8_t>(i));
    }
  }
}

TEST(TcpServer, OversizedFrameHeaderDropsOnlyThatConnection) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  {
    Socket rogue = raw_connect(server.port());
    // Header claiming kMaxFrameBytes + 1: the server must hang up before
    // buffering any payload.
    const auto claim = static_cast<std::uint32_t>(kMaxFrameBytes + 1);
    const Bytes header = {static_cast<std::uint8_t>(claim >> 24),
                          static_cast<std::uint8_t>(claim >> 16),
                          static_cast<std::uint8_t>(claim >> 8),
                          static_cast<std::uint8_t>(claim)};
    raw_send(rogue, header);
    EXPECT_THROW((void)recv_frame(rogue), NetError);  // EOF from the server
  }
  // The server survives and keeps serving well-behaved clients.
  TcpRequestChannel good("127.0.0.1", server.port());
  EXPECT_EQ(good.request(bytes_of("fine")), bytes_of("fine"));
}

TEST(TcpServer, FrameSplitAcrossManyWritesReassembled) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  Socket client = raw_connect(server.port());

  const Bytes payload = bytes_of("split across events");
  Bytes wire;
  const auto len = static_cast<std::uint32_t>(payload.size());
  wire.push_back(static_cast<std::uint8_t>(len >> 24));
  wire.push_back(static_cast<std::uint8_t>(len >> 16));
  wire.push_back(static_cast<std::uint8_t>(len >> 8));
  wire.push_back(static_cast<std::uint8_t>(len));
  append(wire, payload);

  // Drip the frame one byte at a time with pauses: each byte is its own
  // readiness event at the server.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    raw_send(client, BytesView(&wire[i], 1));
    if (i % 5 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(recv_frame(client), payload);
}

TEST(TcpServer, PeerCloseMidFrameKeepsServing) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  {
    Socket quitter = raw_connect(server.port());
    const Bytes partial_header = {0x00, 0x00};
    raw_send(quitter, partial_header);
  }  // orderly close mid-header
  {
    Socket quitter = raw_connect(server.port());
    const Bytes partial_payload = {0x00, 0x00, 0x00, 0x08, 0xab};
    raw_send(quitter, partial_payload);
  }  // orderly close mid-payload
  // Give the loop a beat to process the closes, then prove it still works.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  TcpRequestChannel good("127.0.0.1", server.port());
  EXPECT_EQ(good.request(bytes_of("ok")), bytes_of("ok"));
}

TEST(TcpServer, HandlerDelayVisibleInWallClock) {
  // The real-network analogue of the timing measurement: a slow handler
  // (e.g. a relayed look-up) shows up in the client-observed RTT.
  TcpServer server([](BytesView req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Bytes(req.begin(), req.end());
  });
  TcpRequestChannel client("127.0.0.1", server.port());
  SteadyAuditTimer timer;
  const Millis before = timer.now();
  (void)client.request(bytes_of("x"));
  const double rtt = (timer.now() - before).count();
  EXPECT_GE(rtt, 19.0);
}

}  // namespace
}  // namespace geoproof::net

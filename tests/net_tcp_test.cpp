#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/errors.hpp"

namespace geoproof::net {
namespace {

TEST(TcpServer, EchoRoundTrip) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  TcpRequestChannel client("127.0.0.1", server.port());
  EXPECT_EQ(client.request(bytes_of("hello")), bytes_of("hello"));
  EXPECT_EQ(client.request(bytes_of("again")), bytes_of("again"));
}

TEST(TcpServer, EmptyFrames) {
  TcpServer server([](BytesView) { return Bytes{}; });
  TcpRequestChannel client("127.0.0.1", server.port());
  EXPECT_TRUE(client.request({}).empty());
}

TEST(TcpServer, LargePayload) {
  TcpServer server([](BytesView req) {
    Bytes out(req.begin(), req.end());
    out.push_back(0x42);
    return out;
  });
  TcpRequestChannel client("127.0.0.1", server.port());
  const Bytes big(1 << 20, 0xab);  // 1 MiB
  const Bytes resp = client.request(big);
  ASSERT_EQ(resp.size(), big.size() + 1);
  EXPECT_EQ(resp.back(), 0x42);
}

TEST(TcpServer, SequentialClients) {
  TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
  {
    TcpRequestChannel c1("127.0.0.1", server.port());
    EXPECT_EQ(c1.request(bytes_of("one")), bytes_of("one"));
  }  // c1 disconnects
  TcpRequestChannel c2("127.0.0.1", server.port());
  EXPECT_EQ(c2.request(bytes_of("two")), bytes_of("two"));
}

TEST(TcpServer, ManySmallRequests) {
  TcpServer server([](BytesView req) {
    Bytes out(req.begin(), req.end());
    for (auto& b : out) b = static_cast<std::uint8_t>(b + 1);
    return out;
  });
  TcpRequestChannel client("127.0.0.1", server.port());
  for (int i = 0; i < 200; ++i) {
    const Bytes req = {static_cast<std::uint8_t>(i)};
    const Bytes resp = client.request(req);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0], static_cast<std::uint8_t>(i + 1));
  }
}

TEST(TcpServer, StopUnblocksAccept) {
  auto server = std::make_unique<TcpServer>(
      [](BytesView req) { return Bytes(req.begin(), req.end()); });
  server->stop();     // no client ever connected
  server.reset();     // must not hang
  SUCCEED();
}

TEST(TcpRequestChannel, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    TcpServer server([](BytesView req) { return Bytes(req.begin(), req.end()); });
    dead_port = server.port();
  }  // server gone
  EXPECT_THROW(TcpRequestChannel("127.0.0.1", dead_port), NetError);
}

TEST(TcpRequestChannel, BadAddressThrows) {
  EXPECT_THROW(TcpRequestChannel("not-an-ip", 1234), NetError);
}

TEST(TcpServer, HandlerDelayVisibleInWallClock) {
  // The real-network analogue of the timing measurement: a slow handler
  // (e.g. a relayed look-up) shows up in the client-observed RTT.
  TcpServer server([](BytesView req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Bytes(req.begin(), req.end());
  });
  TcpRequestChannel client("127.0.0.1", server.port());
  SteadyAuditTimer timer;
  const Millis before = timer.now();
  (void)client.request(bytes_of("x"));
  const double rtt = (timer.now() - before).count();
  EXPECT_GE(rtt, 19.0);
}

}  // namespace
}  // namespace geoproof::net

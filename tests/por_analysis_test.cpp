#include "por/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace geoproof::por {
namespace {

TEST(DetectionProbability, PaperExample71Percent) {
  // §V-C(a): 1,000,000 segments, 1,000 queried per challenge, corruption
  // rate such that detection ~ 71.3% - i.e. ~1,250 corrupted segments
  // (1 - (1 - 0.00125)^1000 = 0.7135).
  const double p = detection_probability(1'000'000, 1'250, 1'000);
  EXPECT_NEAR(p, 0.713, 0.005);
  const double p_iid = detection_probability_iid(0.00125, 1'000);
  EXPECT_NEAR(p_iid, 0.7135, 0.001);
}

TEST(DetectionProbability, EdgeCases) {
  EXPECT_EQ(detection_probability(100, 0, 10), 0.0);
  EXPECT_EQ(detection_probability(100, 100, 1), 1.0);
  // Pigeonhole: querying more segments than there are clean ones.
  EXPECT_EQ(detection_probability(100, 50, 51), 1.0);
  EXPECT_THROW(detection_probability(0, 0, 1), InvalidArgument);
  EXPECT_THROW(detection_probability(10, 11, 1), InvalidArgument);
}

TEST(DetectionProbability, MonotoneInChallengeSize) {
  double prev = -1;
  for (unsigned k : {1u, 10u, 100u, 500u, 1000u}) {
    const double p = detection_probability(10'000, 50, k);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(DetectionProbability, HypergeometricVsIidClose) {
  // For small sampling fractions the two models agree closely.
  const double h = detection_probability(1'000'000, 5'000, 200);
  const double i = detection_probability_iid(0.005, 200);
  EXPECT_NEAR(h, i, 0.002);
}

TEST(DetectionProbability, MatchesMonteCarlo) {
  // Property check against simulation: n=2000 segments, m=40 corrupted,
  // k=50 queries.
  const double closed = detection_probability(2000, 40, 50);
  Rng rng(77);
  int detected = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    // Sample k distinct indices; detection iff any < m (corrupt the first
    // m w.l.o.g. - the challenge is uniform).
    bool hit = false;
    std::uint64_t remaining = 2000, need = 50;
    for (std::uint64_t i = 0; i < 2000 && need > 0; ++i) {
      if (rng.next_below(remaining) < need) {
        --need;
        if (i < 40) {
          hit = true;
          break;
        }
      }
      --remaining;
    }
    detected += hit;
  }
  EXPECT_NEAR(static_cast<double>(detected) / trials, closed, 0.01);
}

TEST(ChallengesForDetection, InvertsTheFormula) {
  const unsigned k = challenges_for_detection(0.00125, 0.7135);
  EXPECT_NEAR(k, 1000u, 5u);
  // And the result actually achieves the target.
  EXPECT_GE(detection_probability_iid(0.00125, k), 0.7135 - 1e-6);
}

TEST(ChallengesForDetection, ValidatesInput) {
  EXPECT_THROW(challenges_for_detection(0.0, 0.5), InvalidArgument);
  EXPECT_THROW(challenges_for_detection(0.5, 1.0), InvalidArgument);
}

TEST(BinomialTail, KnownSmallCases) {
  // X ~ Bin(3, 0.5): P[X > 1] = P[2] + P[3] = 3/8 + 1/8 = 0.5.
  EXPECT_NEAR(binomial_tail_gt(3, 0.5, 1), 0.5, 1e-12);
  // P[X > 2] = 1/8.
  EXPECT_NEAR(binomial_tail_gt(3, 0.5, 2), 0.125, 1e-12);
  EXPECT_EQ(binomial_tail_gt(3, 0.5, 3), 0.0);
  EXPECT_EQ(binomial_tail_gt(10, 0.0, 0), 0.0);
  EXPECT_EQ(binomial_tail_gt(10, 1.0, 5), 1.0);
}

TEST(BinomialTail, MatchesMonteCarlo) {
  Rng rng(88);
  const int trials = 50000;
  int above = 0;
  for (int t = 0; t < trials; ++t) {
    int x = 0;
    for (int i = 0; i < 255; ++i) x += rng.next_bool(0.02);
    above += x > 10;
  }
  const double closed = binomial_tail_gt(255, 0.02, 10);
  EXPECT_NEAR(static_cast<double>(above) / trials, closed, 0.01);
}

TEST(FileIrretrievable, PaperClaimHalfPercentCorruption) {
  // §V-C(a): with 0.5% block corruption and the (255,223,32) code the
  // adversary makes the file irretrievable with probability < 1/200,000.
  // The 2 GB example has 153M encoded blocks ~ 600k chunks; with erasure
  // decoding (tags localise damage) each chunk absorbs 32 bad blocks.
  const double p_chunk_erasure =
      binomial_tail_gt(255, 0.005, 32);
  EXPECT_LT(p_chunk_erasure, 1e-30);  // essentially impossible per chunk
  const double p_file =
      file_irretrievable_probability(600'000, 255, 32, 0.005);
  EXPECT_LT(p_file, 1.0 / 200'000.0);
}

TEST(FileIrretrievable, BlindDecodingWeaker) {
  // Without erasure information the budget halves (16 errors): the bound
  // is weaker but still minuscule at 0.5% corruption.
  const double p_file =
      file_irretrievable_probability(600'000, 255, 16, 0.005);
  EXPECT_LT(p_file, 1.0 / 200'000.0);
  // At 3% corruption blind decoding starts failing while erasure decoding
  // holds on - the ordering must be strict.
  const double blind = file_irretrievable_probability(1000, 255, 16, 0.03);
  const double erasure = file_irretrievable_probability(1000, 255, 32, 0.03);
  EXPECT_GT(blind, erasure);
}

TEST(FileIrretrievable, MonotoneInCorruption) {
  double prev = -1;
  for (double rate : {0.001, 0.01, 0.03, 0.06, 0.1}) {
    const double p = file_irretrievable_probability(1000, 255, 16, rate);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(TagForgery, TwentyBitTagsTimesK) {
  // One 20-bit tag: 2^-20 ~ 1e-6. A 100-round audit: 2^-2000.
  EXPECT_NEAR(log10_tag_forgery_probability(20, 1), -6.02, 0.01);
  EXPECT_NEAR(log10_tag_forgery_probability(20, 100), -602.06, 0.1);
}

}  // namespace
}  // namespace geoproof::por

#include "common/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace geoproof::log {
namespace {

/// Capture log output for one test and restore stderr + level after.
class LogCapture {
 public:
  LogCapture() : saved_level_(level()) { set_stream(&out_); }
  ~LogCapture() {
    set_stream(nullptr);
    set_level(saved_level_);
  }
  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
  Level saved_level_;
};

TEST(Log, LineCarriesLevelComponentMessageAndFields) {
  LogCapture capture;
  info("prover", "listening", {{"port", 4242}, {"host", "127.0.0.1"}});
  const std::string line = capture.str();
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("component=prover"), std::string::npos);
  EXPECT_NE(line.find("msg=listening"), std::string::npos);
  EXPECT_NE(line.find("port=4242"), std::string::npos);
  EXPECT_NE(line.find("host=127.0.0.1"), std::string::npos);
  EXPECT_NE(line.find("ts="), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(Log, ValuesWithSpacesAreQuotedAndEscaped) {
  LogCapture capture;
  warn("audit", "sweep failed", {{"error", "connect refused \"here\""}});
  const std::string line = capture.str();
  EXPECT_NE(line.find("msg=\"sweep failed\""), std::string::npos);
  EXPECT_NE(line.find("error=\"connect refused \\\"here\\\"\""),
            std::string::npos);
}

TEST(Log, LevelFilterSuppressesBelowThreshold) {
  LogCapture capture;
  set_level(Level::kWarn);
  debug("c", "dropped");
  info("c", "dropped");
  warn("c", "kept");
  error("c", "kept");
  const std::string out = capture.str();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("level=warn"), std::string::npos);
  EXPECT_NE(out.find("level=error"), std::string::npos);
}

TEST(Log, FieldFormatsNumericsAndBools) {
  const Field u("u", std::uint64_t{18446744073709551615ull});
  EXPECT_EQ(u.value, "18446744073709551615");
  const Field i("i", std::int64_t{-5});
  EXPECT_EQ(i.value, "-5");
  const Field d("d", 2.5);
  EXPECT_EQ(d.value, "2.5");
  const Field b("b", true);
  EXPECT_EQ(b.value, "true");
}

TEST(Log, ParseLevelRoundTripsAndRejectsUnknown) {
  Level out;
  for (const auto lvl :
       {Level::kDebug, Level::kInfo, Level::kWarn, Level::kError}) {
    ASSERT_TRUE(parse_level(to_string(lvl), out));
    EXPECT_EQ(out, lvl);
  }
  EXPECT_FALSE(parse_level("verbose", out));
  EXPECT_EQ(out, Level::kInfo);  // safe default
}

TEST(Log, EmptyValueIsQuoted) {
  LogCapture capture;
  info("c", "m", {{"empty", ""}});
  EXPECT_NE(capture.str().find("empty=\"\""), std::string::npos);
}

}  // namespace
}  // namespace geoproof::log

#include "por/encoded_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace geoproof::por {
namespace {

const Bytes kMaster = bytes_of("io master key");

PorParams small_params() {
  PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  return p;
}

EncodedFile sample_file(std::size_t size = 5000) {
  Rng rng(1);
  const PorEncoder enc(small_params());
  return enc.encode(rng.next_bytes(size), 77, kMaster);
}

TEST(EncodedIo, SerializeRoundTrip) {
  const EncodedFile file = sample_file();
  const Bytes wire = serialize_encoded_file(file);
  const EncodedFile back = deserialize_encoded_file(wire);
  EXPECT_EQ(back.file_id, file.file_id);
  EXPECT_EQ(back.original_size, file.original_size);
  EXPECT_EQ(back.n_data_blocks, file.n_data_blocks);
  EXPECT_EQ(back.n_encoded_blocks, file.n_encoded_blocks);
  EXPECT_EQ(back.n_permuted_blocks, file.n_permuted_blocks);
  EXPECT_EQ(back.n_segments, file.n_segments);
  EXPECT_EQ(back.segment_bytes, file.segment_bytes);
  EXPECT_EQ(back.segments, file.segments);
}

TEST(EncodedIo, RoundTrippedFileStillExtracts) {
  const EncodedFile file = sample_file();
  const EncodedFile back =
      deserialize_encoded_file(serialize_encoded_file(file));
  const PorExtractor ext(small_params());
  const auto a = ext.extract(file, kMaster);
  const auto b = ext.extract(back, kMaster);
  EXPECT_EQ(a.file, b.file);
}

TEST(EncodedIo, BadMagicRejected) {
  Bytes wire = serialize_encoded_file(sample_file());
  wire[0] ^= 0xff;
  EXPECT_THROW(deserialize_encoded_file(wire), SerializeError);
}

TEST(EncodedIo, BadVersionRejected) {
  Bytes wire = serialize_encoded_file(sample_file());
  wire[5] ^= 0x01;  // version low byte
  EXPECT_THROW(deserialize_encoded_file(wire), SerializeError);
}

TEST(EncodedIo, TruncationRejected) {
  Bytes wire = serialize_encoded_file(sample_file());
  wire.resize(wire.size() - 1);
  EXPECT_THROW(deserialize_encoded_file(wire), SerializeError);
}

TEST(EncodedIo, TrailingBytesRejected) {
  Bytes wire = serialize_encoded_file(sample_file());
  wire.push_back(0x00);
  EXPECT_THROW(deserialize_encoded_file(wire), SerializeError);
}

TEST(EncodedIo, ImplausibleGeometryRejected) {
  // Hand-craft a header that claims 2^40 segments.
  Bytes wire = serialize_encoded_file(sample_file());
  // n_segments lives at offset 4+2+8*5 = 46 (u64, big-endian).
  for (int i = 0; i < 8; ++i) wire[46 + i] = 0xff;
  EXPECT_THROW(deserialize_encoded_file(wire), SerializeError);
}

TEST(EncodedIo, SaveLoadFile) {
  const std::string path = "/tmp/geoproof_io_test.gprf";
  const EncodedFile file = sample_file();
  save_encoded_file(path, file);
  const EncodedFile back = load_encoded_file(path);
  EXPECT_EQ(back.segments, file.segments);
  std::remove(path.c_str());
}

TEST(EncodedIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_encoded_file("/tmp/no/such/dir/x.gprf"), StorageError);
}

TEST(EncodedIo, SaveToBadPathThrows) {
  EXPECT_THROW(save_encoded_file("/tmp/no/such/dir/x.gprf", sample_file()),
               StorageError);
}

}  // namespace
}  // namespace geoproof::por

#include "core/transcript.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace geoproof::core {
namespace {

AuditTranscript sample_transcript() {
  AuditTranscript t;
  t.file_id = 99;
  t.nonce = bytes_of("nonce-123");
  t.position = {-27.47, 153.02};
  t.challenge = {5, 17, 3};
  t.rtts = {Millis{14.2}, Millis{13.9}, Millis{15.5}};
  t.segments = {bytes_of("seg-five"), bytes_of("seg-seventeen"),
                bytes_of("seg-three")};
  return t;
}

TEST(AuditRequest, SerializeRoundTrip) {
  AuditRequest req;
  req.file_id = 7;
  req.n_segments = 1000;
  req.k = 20;
  req.nonce = bytes_of("fresh-nonce");
  const AuditRequest back = AuditRequest::deserialize(req.serialize());
  EXPECT_EQ(back.file_id, 7u);
  EXPECT_EQ(back.n_segments, 1000u);
  EXPECT_EQ(back.k, 20u);
  EXPECT_EQ(back.nonce, req.nonce);
}

TEST(AuditRequest, RejectsTruncation) {
  AuditRequest req;
  req.nonce = bytes_of("n");
  Bytes wire = req.serialize();
  wire.pop_back();
  EXPECT_THROW(AuditRequest::deserialize(wire), SerializeError);
}

TEST(AuditRequest, RejectsOversizeK) {
  AuditRequest req;
  req.k = 5u << 20;
  EXPECT_THROW(AuditRequest::deserialize(req.serialize()), SerializeError);
}

TEST(AuditRequest, ExplicitPositionsRoundTrip) {
  // The unified request carries TPA-chosen challenges (sentinel positions,
  // Merkle indices) inline.
  AuditRequest req;
  req.file_id = 7;
  req.k = 3;
  req.nonce = bytes_of("fresh-nonce");
  req.positions = {42, 7, 99};
  const AuditRequest back = AuditRequest::deserialize(req.serialize());
  EXPECT_EQ(back.positions, req.positions);
  EXPECT_EQ(back.k, 3u);
}

TEST(AuditRequest, RejectsPositionCountDisagreeingWithK) {
  AuditRequest req;
  req.k = 2;
  req.positions = {1, 2, 3};
  EXPECT_THROW(AuditRequest::deserialize(req.serialize()), SerializeError);
}

TEST(SegmentRequest, SerializeRoundTrip) {
  const SegmentRequest req{42, 1234567};
  const SegmentRequest back = SegmentRequest::deserialize(req.serialize());
  EXPECT_EQ(back.file_id, 42u);
  EXPECT_EQ(back.index, 1234567u);
}

TEST(SegmentRequest, RejectsTrailingBytes) {
  Bytes wire = SegmentRequest{1, 2}.serialize();
  wire.push_back(0);
  EXPECT_THROW(SegmentRequest::deserialize(wire), SerializeError);
}

TEST(AuditTranscript, SerializeRoundTrip) {
  const AuditTranscript t = sample_transcript();
  const AuditTranscript back = AuditTranscript::deserialize(t.serialize());
  EXPECT_EQ(back.file_id, t.file_id);
  EXPECT_EQ(back.nonce, t.nonce);
  EXPECT_EQ(back.position, t.position);
  EXPECT_EQ(back.challenge, t.challenge);
  EXPECT_EQ(back.segments, t.segments);
  ASSERT_EQ(back.rtts.size(), t.rtts.size());
  for (std::size_t i = 0; i < t.rtts.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.rtts[i].count(), t.rtts[i].count());
  }
}

TEST(AuditTranscript, MaxRtt) {
  const AuditTranscript t = sample_transcript();
  EXPECT_DOUBLE_EQ(t.max_rtt().count(), 15.5);
  EXPECT_DOUBLE_EQ(AuditTranscript{}.max_rtt().count(), 0.0);
}

TEST(AuditTranscript, InconsistentRoundsRejectedOnSerialize) {
  AuditTranscript t = sample_transcript();
  t.rtts.pop_back();
  EXPECT_THROW(t.serialize(), SerializeError);
}

TEST(AuditTranscript, DifferentContentDifferentBytes) {
  // The signature covers serialize(); any field change must alter it.
  const Bytes base = sample_transcript().serialize();
  {
    AuditTranscript t = sample_transcript();
    t.position.lat_deg += 0.0001;
    EXPECT_NE(t.serialize(), base);
  }
  {
    AuditTranscript t = sample_transcript();
    t.rtts[1] = Millis{1.0};
    EXPECT_NE(t.serialize(), base);
  }
  {
    AuditTranscript t = sample_transcript();
    t.segments[0][0] ^= 1;
    EXPECT_NE(t.serialize(), base);
  }
  {
    AuditTranscript t = sample_transcript();
    t.nonce[0] ^= 1;
    EXPECT_NE(t.serialize(), base);
  }
}

TEST(SignedTranscript, SerializeRoundTrip) {
  crypto::MerkleSigner signer(bytes_of("seed"), 3);
  SignedTranscript st;
  st.transcript = sample_transcript();
  st.signature = signer.sign(st.transcript.serialize());

  const SignedTranscript back = SignedTranscript::deserialize(st.serialize());
  EXPECT_EQ(back.transcript.challenge, st.transcript.challenge);
  EXPECT_TRUE(crypto::merkle_verify(signer.public_key(),
                                    back.transcript.serialize(),
                                    back.signature));
}

TEST(SignedTranscript, GarbageRejected) {
  EXPECT_THROW(SignedTranscript::deserialize(bytes_of("garbage")), Error);
}

}  // namespace
}  // namespace geoproof::core

// Deterministic concurrency harness for core::ShardedAuditEngine.
//
// Every world here is fully seeded (file contents, LAN jitter, disk
// sampling, challenge sampling, signing keys), so two fleets built with
// the same arguments behave identically — which is what lets the suite
// assert *bit-identical* single-shard equivalence with
// AuditService::run_all, stable partitioning, exact compliance
// aggregation, fault isolation, and a ≥64-registration multi-shard
// stress run (the TSan CI job's main course).
//
// Fleet layout: one scheme instance per flavour, shared by every
// registration of that flavour (deliberately — that is the shared-state
// path the engine must keep safe across shards); one MiniWorld (clock,
// provider, channel, verifier) per registration, so the timed paths are
// shard-independent. All verifier devices use the same burned-in signer
// seed, hence one public key per fleet — which is what makes one TPA
// config per flavour possible.
#include "core/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/dynamic_geoproof.hpp"
#include "core/provider.hpp"
#include "core/verifier.hpp"
#include "net/channel.hpp"

namespace geoproof::core {
namespace {

constexpr net::GeoPoint kSite{-27.47, 153.02};
const Bytes kMaster = bytes_of("sharded-engine master key");
constexpr std::uint32_t kChallenge = 3;

por::PorParams small_por() {
  por::PorParams p;
  p.ecc_data_blocks = 16;
  p.ecc_parity_blocks = 4;
  return p;
}

/// One registration's private timed path: its own virtual clock, provider,
/// LAN channel and verifier device. Schemes are shared at fleet level.
struct MiniWorld {
  SimClock clock;
  net::SimAuditTimer timer{clock};
  std::unique_ptr<CloudProvider> provider;                    // mac/sentinel
  std::unique_ptr<por::DynamicPorProvider> dyn_provider;      // dynamic
  std::unique_ptr<DynamicProviderService> dyn_service;
  std::unique_ptr<net::SimRequestChannel> channel;
  std::unique_ptr<VerifierDevice> verifier;
  FileRecord record;
};

enum class Flavour { kMac, kSentinel, kDynamic };

struct FleetSpec {
  unsigned files_per_flavour = 2;
  std::uint64_t seed = 101;
  unsigned sentinel_supply = 40;  // per-file sentinels
  std::size_t file_bytes = 1200;
};

struct Fleet {
  std::unique_ptr<MacAuditScheme> mac;
  std::unique_ptr<SentinelAuditScheme> sentinel;
  std::unique_ptr<DynamicAuditScheme> dynamic;
  std::vector<std::unique_ptr<MiniWorld>> worlds;
  AuditService service;

  /// The clock history entries are stamped with (world 0's — any fixed
  /// choice works, as long as run_all and the engine use the same one).
  SimClock& stamp_clock() { return worlds.front()->clock; }
  ShardedAuditEngine::ShardClock stamp_reader() {
    SimClock* clock = &stamp_clock();
    return [clock] { return clock->now(); };
  }
};

std::unique_ptr<MiniWorld> make_world(Flavour flavour, const FleetSpec& spec,
                                      std::uint64_t file_id, Rng& rng) {
  auto world = std::make_unique<MiniWorld>();
  MiniWorld& w = *world;
  const Bytes content = rng.next_bytes(spec.file_bytes);
  const auto lan = [&w, file_id](net::RequestHandler handler) {
    return std::make_unique<net::SimRequestChannel>(
        w.clock, net::lan_latency(net::LanModel{}, Kilometers{0.1}, file_id),
        std::move(handler));
  };
  CloudProvider::Config pcfg;
  pcfg.name = "dc-" + std::to_string(file_id);
  pcfg.location = kSite;
  pcfg.seed = 0x9e0 + file_id;

  switch (flavour) {
    case Flavour::kMac: {
      w.provider = std::make_unique<CloudProvider>(pcfg, w.clock);
      const por::EncodedFile encoded =
          por::PorEncoder(small_por()).encode(content, file_id, kMaster);
      w.provider->store(encoded);
      w.record = FileRecord{file_id, encoded.n_segments, 0};
      w.channel = lan(w.provider->handler());
      break;
    }
    case Flavour::kSentinel: {
      const por::SentinelParams params{.block_size = 16,
                                       .n_sentinels = spec.sentinel_supply};
      w.provider = std::make_unique<CloudProvider>(pcfg, w.clock);
      const por::SentinelEncoded encoded =
          por::SentinelPor(params).encode(content, file_id, kMaster);
      w.provider->store_blocks(file_id, encoded.blocks, params.block_size);
      w.record = SentinelAuditScheme::file_record(encoded);
      w.channel = lan(w.provider->handler());
      break;
    }
    case Flavour::kDynamic: {
      w.dyn_provider = std::make_unique<por::DynamicPorProvider>(
          por::PorEncoder(small_por()).encode(content, file_id, kMaster));
      w.dyn_service = std::make_unique<DynamicProviderService>(
          *w.dyn_provider, w.clock, storage::DiskModel(storage::wd2500jd()),
          /*sample_latency=*/true, /*seed=*/0xd1 + file_id);
      w.channel = lan(w.dyn_service->handler());
      break;
    }
  }
  VerifierDevice::Config vcfg;  // default signer seed: one pk per fleet
  vcfg.position = kSite;
  // 2^6 = 64 audits per device: an order of magnitude more than any test
  // here runs, and keygen stays cheap enough to build 60+ worlds quickly.
  vcfg.signer_height = 6;
  w.verifier = std::make_unique<VerifierDevice>(vcfg, *w.channel, w.timer);
  return world;
}

AuditorConfig fleet_config(const VerifierDevice& verifier) {
  AuditorConfig cfg;
  cfg.master_key = kMaster;
  cfg.verifier_pk = verifier.public_key();
  cfg.expected_position = kSite;
  cfg.policy = LatencyPolicy::for_disk(storage::wd2500jd());
  return cfg;
}

/// files_per_flavour registrations of each of the three flavours, file ids
/// interleaved (1 = mac, 2 = sentinel, 3 = dynamic, 4 = mac, ...) so the
/// default modulo partitioner mixes flavours within every shard.
Fleet make_fleet(const FleetSpec& spec) {
  Fleet fleet;
  Rng rng(spec.seed);
  std::uint64_t next_id = 1;
  for (unsigned i = 0; i < spec.files_per_flavour; ++i) {
    for (const Flavour flavour :
         {Flavour::kMac, Flavour::kSentinel, Flavour::kDynamic}) {
      const std::uint64_t id = next_id++;
      fleet.worlds.push_back(make_world(flavour, spec, id, rng));
      MiniWorld& w = *fleet.worlds.back();
      switch (flavour) {
        case Flavour::kMac:
          if (!fleet.mac) {
            fleet.mac = std::make_unique<MacAuditScheme>(
                fleet_config(*w.verifier), small_por());
          }
          fleet.service.add(*fleet.mac, *w.verifier, w.record, kChallenge);
          break;
        case Flavour::kSentinel:
          if (!fleet.sentinel) {
            fleet.sentinel = std::make_unique<SentinelAuditScheme>(
                fleet_config(*w.verifier),
                por::SentinelParams{.block_size = 16,
                                    .n_sentinels = spec.sentinel_supply});
          }
          fleet.service.add(*fleet.sentinel, *w.verifier, w.record,
                            kChallenge);
          break;
        case Flavour::kDynamic:
          if (!fleet.dynamic) {
            fleet.dynamic = std::make_unique<DynamicAuditScheme>(
                fleet_config(*w.verifier), small_por());
          }
          w.record = fleet.dynamic->register_file(
              id, w.dyn_provider->root(), w.dyn_provider->n_segments());
          fleet.service.add(*fleet.dynamic, *w.verifier, w.record,
                            kChallenge);
          break;
      }
    }
  }
  return fleet;
}

void expect_identical_histories(const AuditService& a,
                                const AuditService& b) {
  ASSERT_EQ(a.file_ids(), b.file_ids());
  for (const std::uint64_t id : a.file_ids()) {
    const auto& ha = a.history(id);
    const auto& hb = b.history(id);
    ASSERT_EQ(ha.size(), hb.size()) << "file " << id;
    for (std::size_t i = 0; i < ha.size(); ++i) {
      SCOPED_TRACE("file " + std::to_string(id) + " entry " +
                   std::to_string(i));
      EXPECT_EQ(ha[i].at, hb[i].at);
      const AuditReport& ra = ha[i].report;
      const AuditReport& rb = hb[i].report;
      EXPECT_EQ(ra.accepted, rb.accepted);
      EXPECT_EQ(ra.failures, rb.failures);
      EXPECT_EQ(ra.max_rtt, rb.max_rtt);
      EXPECT_EQ(ra.mean_rtt, rb.mean_rtt);
      EXPECT_EQ(ra.bad_tags, rb.bad_tags);
      EXPECT_EQ(ra.timing_violations, rb.timing_violations);
      EXPECT_EQ(ra.position_error.value, rb.position_error.value);
      EXPECT_EQ(ra.bytes_exchanged, rb.bytes_exchanged);
    }
  }
}

// ---------------------------------------------------------------------------
// Single-shard equivalence: the engine with one shard IS run_all.
// ---------------------------------------------------------------------------

TEST(ShardedEngine, SingleShardMatchesRunAllBitForBit) {
  const FleetSpec spec;  // 2 files x 3 flavours
  Fleet reference = make_fleet(spec);
  Fleet sharded = make_fleet(spec);

  ShardedAuditEngine::Options opts;
  opts.shards = 1;
  ShardedAuditEngine::ShardClock reader = sharded.stamp_reader();
  opts.clock_source = [&reader](std::size_t) { return reader; };
  ShardedAuditEngine engine(sharded.service, opts);

  unsigned reference_passed = 0;
  unsigned engine_passed = 0;
  for (int sweep = 0; sweep < 3; ++sweep) {
    reference_passed += reference.service.run_all(reference.stamp_clock());
    engine_passed += engine.sweep_once();
  }
  EXPECT_EQ(engine_passed, reference_passed);
  expect_identical_histories(reference.service, sharded.service);

  const auto aggregate = sharded.service.compliance();
  EXPECT_EQ(engine.compliance_all().total, aggregate.total);
  EXPECT_EQ(engine.compliance_all().passed, aggregate.passed);
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

TEST(ShardedEngine, PartitioningIsStableAndInjectable) {
  Fleet fleet = make_fleet({.files_per_flavour = 4, .seed = 7});
  ShardedAuditEngine::Options opts;
  opts.shards = 4;
  ShardedAuditEngine engine(fleet.service, opts);

  const auto plan = engine.shard_plan();
  ASSERT_EQ(plan.size(), 4u);
  std::set<std::uint64_t> seen;
  for (std::size_t s = 0; s < plan.size(); ++s) {
    for (std::size_t i = 0; i < plan[s].size(); ++i) {
      // Default partitioner: modulo, ascending within the shard.
      EXPECT_EQ(plan[s][i] % 4, s);
      if (i > 0) {
        EXPECT_LT(plan[s][i - 1], plan[s][i]);
      }
      EXPECT_TRUE(seen.insert(plan[s][i]).second);
      EXPECT_EQ(engine.shard_of(plan[s][i]), s);
    }
  }
  EXPECT_EQ(seen.size(), fleet.service.size());
  // The plan is a pure function of (registry, partitioner).
  EXPECT_EQ(engine.shard_plan(), plan);

  // A custom partitioner is honoured (everything on shard 2), and shards
  // with empty queues don't stall the sweep.
  ShardedAuditEngine::Options pinned_opts;
  pinned_opts.shards = 4;
  pinned_opts.partitioner = [](std::uint64_t, std::size_t) -> std::size_t {
    return 2;
  };
  pinned_opts.work_stealing = false;
  ShardedAuditEngine pinned(fleet.service, pinned_opts);
  const auto pinned_plan = pinned.shard_plan();
  EXPECT_TRUE(pinned_plan[0].empty());
  EXPECT_TRUE(pinned_plan[1].empty());
  EXPECT_TRUE(pinned_plan[3].empty());
  EXPECT_EQ(pinned_plan[2].size(), fleet.service.size());
  EXPECT_EQ(pinned.sweep_once(), fleet.service.size());

  // An out-of-range partitioner is an error, not a silent wrap.
  ShardedAuditEngine::Options broken_opts;
  broken_opts.shards = 2;
  broken_opts.partitioner = [](std::uint64_t, std::size_t shards) {
    return shards;  // one past the end
  };
  ShardedAuditEngine broken(fleet.service, broken_opts);
  EXPECT_THROW(broken.shard_of(1), InvalidArgument);
  EXPECT_THROW(broken.sweep_once(), InvalidArgument);

  ShardedAuditEngine::Options no_shards;
  no_shards.shards = 0;
  EXPECT_THROW(ShardedAuditEngine(fleet.service, no_shards),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Compliance aggregation across shards
// ---------------------------------------------------------------------------

TEST(ShardedEngine, AggregatesComplianceAcrossShards) {
  Fleet fleet = make_fleet({.files_per_flavour = 4, .seed = 33});
  // Corrupt two MAC providers' stored segments: ids 1 and 4 are MAC
  // registrations (flavours interleave 1=mac, 2=sentinel, 3=dynamic, ...).
  for (const std::uint64_t bad_id : {1ull, 4ull}) {
    MiniWorld& w = *fleet.worlds[bad_id - 1];
    for (std::uint64_t i = 0; i < w.record.n_segments; ++i) {
      w.provider->tamper_segment(bad_id, i, 0xff);
    }
  }

  ShardedAuditEngine::Options opts;
  opts.shards = 4;
  ShardedAuditEngine engine(fleet.service, opts);
  const unsigned passed = engine.sweep_once();

  const unsigned total = static_cast<unsigned>(fleet.service.size());
  EXPECT_EQ(passed, total - 2);
  EXPECT_EQ(engine.compliance_all().total, total);
  EXPECT_EQ(engine.compliance_all().passed, total - 2);
  EXPECT_FALSE(engine.compliance_all().meets(1.0));
  EXPECT_TRUE(engine.compliance_all().meets(0.8));

  // The engine's atomic aggregate equals the service's per-file merge.
  const auto service_view = fleet.service.compliance();
  EXPECT_EQ(engine.compliance_all().total, service_view.total);
  EXPECT_EQ(engine.compliance_all().passed, service_view.passed);
  for (const std::uint64_t id : fleet.service.file_ids()) {
    const auto c = fleet.service.compliance(id);
    EXPECT_EQ(c.total, 1u);
    EXPECT_EQ(c.passed, (id == 1 || id == 4) ? 0u : 1u) << "file " << id;
  }
}

// ---------------------------------------------------------------------------
// Fault isolation: one aborting scheme doesn't stall other shards.
// ---------------------------------------------------------------------------

TEST(ShardedEngine, AbortingSchemeIsIsolatedToItsRegistration) {
  // Sentinel supply of 2 * kChallenge: sweeps 1-2 succeed, sweep 3 throws
  // inside plan_challenge for every sentinel registration.
  Fleet fleet = make_fleet({.files_per_flavour = 3,
                            .seed = 55,
                            .sentinel_supply = 2 * kChallenge});
  ShardedAuditEngine::Options opts;
  opts.shards = 3;
  ShardedAuditEngine engine(fleet.service, opts);

  EXPECT_EQ(engine.sweep_once(), fleet.service.size());
  EXPECT_EQ(engine.sweep_once(), fleet.service.size());
  // Third sweep: the 3 sentinel registrations abort, everyone else passes.
  EXPECT_EQ(engine.sweep_once(), fleet.service.size() - 3);
  EXPECT_EQ(engine.stats().aborted, 3u);

  for (const std::uint64_t id : fleet.service.file_ids()) {
    const auto& history = fleet.service.history(id);
    ASSERT_EQ(history.size(), 3u) << "file " << id;  // nobody got stalled
    const bool is_sentinel = (id % 3) == 2;  // ids 2, 5, 8
    EXPECT_EQ(history.back().report.accepted, !is_sentinel) << "file " << id;
    EXPECT_EQ(history.back().report.failed(AuditFailure::kAborted),
              is_sentinel)
        << "file " << id;
  }
}

// ---------------------------------------------------------------------------
// Seeded many-registration stress: >= 64 registrations, all flavours,
// many shards, work stealing on. The TSan job leans on this test.
// ---------------------------------------------------------------------------

TEST(ShardedEngine, StressManyRegistrationsAcrossShards) {
  // 22 x 3 = 66 registrations (>= 64), one shared scheme per flavour.
  Fleet fleet = make_fleet({.files_per_flavour = 22, .seed = 2024});
  const unsigned total = static_cast<unsigned>(fleet.service.size());
  ASSERT_GE(total, 64u);

  ShardedAuditEngine::Options opts;
  opts.shards = 8;
  opts.seed = 0xfeed;
  ShardedAuditEngine engine(fleet.service, opts);

  constexpr unsigned kSweeps = 2;
  unsigned passed = 0;
  for (unsigned i = 0; i < kSweeps; ++i) passed += engine.sweep_once();

  EXPECT_EQ(passed, kSweeps * total);
  EXPECT_EQ(engine.compliance_all().total, kSweeps * total);
  EXPECT_EQ(engine.compliance_all().passed, kSweeps * total);
  EXPECT_EQ(engine.stats().sweeps, kSweeps);
  EXPECT_EQ(engine.stats().aborted, 0u);

  const auto service_view = fleet.service.compliance();
  EXPECT_EQ(service_view.total, kSweeps * total);
  EXPECT_EQ(service_view.passed, kSweeps * total);
  for (const std::uint64_t id : fleet.service.file_ids()) {
    EXPECT_EQ(fleet.service.history(id).size(), kSweeps) << "file " << id;
  }
  // Shared TPA state stayed consistent: every issued nonce was consumed.
  EXPECT_EQ(fleet.mac->nonces().outstanding(), 0u);
  EXPECT_EQ(fleet.sentinel->nonces().outstanding(), 0u);
  EXPECT_EQ(fleet.dynamic->nonces().outstanding(), 0u);
}

// ---------------------------------------------------------------------------
// Wall-clock mode and run_for
// ---------------------------------------------------------------------------

TEST(ShardedEngine, WallClockModeStampsAndRuns) {
  Fleet fleet = make_fleet({.files_per_flavour = 2, .seed = 91});
  ShardedAuditEngine::Options opts;
  opts.shards = 2;
  ShardedAuditEngine engine(fleet.service, opts);  // default wall clocks

  EXPECT_EQ(engine.sweep_once(), fleet.service.size());
  for (const std::uint64_t id : fleet.service.file_ids()) {
    ASSERT_EQ(fleet.service.history(id).size(), 1u);
    EXPECT_GE(fleet.service.history(id).front().at, Nanos{0});
  }
}

TEST(ShardedEngine, RegistryChurnBetweenSweepsIsHonoured) {
  // Removing a registration between sweeps (never during one) must shrink
  // the next sweep's plan and drop the engine's per-device bookkeeping for
  // devices no longer registered.
  Fleet fleet = make_fleet({.files_per_flavour = 2, .seed = 12});
  ShardedAuditEngine::Options opts;
  opts.shards = 2;
  ShardedAuditEngine engine(fleet.service, opts);

  const auto total = static_cast<unsigned>(fleet.service.size());
  EXPECT_EQ(engine.sweep_once(), total);
  fleet.service.remove(1);
  EXPECT_EQ(engine.sweep_once(), total - 1);
  EXPECT_FALSE(fleet.service.has(1));
  for (const std::uint64_t id : fleet.service.file_ids()) {
    EXPECT_EQ(fleet.service.history(id).size(), 2u) << "file " << id;
  }
  EXPECT_EQ(engine.stats().audits, 2u * total - 1);
}

TEST(ShardedEngine, RunForCompletesWholeSweeps) {
  Fleet fleet = make_fleet({.files_per_flavour = 2, .seed = 17});
  ShardedAuditEngine::Options opts;
  opts.shards = 2;
  ShardedAuditEngine engine(fleet.service, opts);

  const auto report = engine.run_for(std::chrono::milliseconds(1));
  EXPECT_GE(report.delta.sweeps, 1u);
  EXPECT_EQ(report.delta.audits,
            report.delta.sweeps * fleet.service.size());
  EXPECT_EQ(report.delta.passed, report.delta.audits);
  EXPECT_GT(report.audits_per_second, 0.0);
  // Histories reflect exactly the completed sweeps (no partial sweep).
  for (const std::uint64_t id : fleet.service.file_ids()) {
    EXPECT_EQ(fleet.service.history(id).size(), report.delta.sweeps);
  }
  EXPECT_FALSE(engine.summary().empty());
}

// ---------------------------------------------------------------------------
// Parked worker pool + the generic run_on_shards hook
// ---------------------------------------------------------------------------

TEST(ShardedEngine, ParkedAndRespawnModesProduceIdenticalSweeps) {
  const FleetSpec spec{.files_per_flavour = 3, .seed = 23};
  Fleet parked_fleet = make_fleet(spec);
  Fleet respawn_fleet = make_fleet(spec);

  ShardedAuditEngine::Options parked_opts;
  parked_opts.shards = 3;
  parked_opts.parked_workers = true;
  ShardedAuditEngine::ShardClock parked_reader = parked_fleet.stamp_reader();
  parked_opts.clock_source = [&parked_reader](std::size_t) {
    return parked_reader;
  };
  ShardedAuditEngine parked(parked_fleet.service, parked_opts);

  ShardedAuditEngine::Options respawn_opts = parked_opts;
  respawn_opts.parked_workers = false;
  ShardedAuditEngine::ShardClock respawn_reader =
      respawn_fleet.stamp_reader();
  respawn_opts.clock_source = [&respawn_reader](std::size_t) {
    return respawn_reader;
  };
  ShardedAuditEngine respawn(respawn_fleet.service, respawn_opts);

  for (int sweep = 0; sweep < 4; ++sweep) {
    EXPECT_EQ(parked.sweep_once(), respawn.sweep_once()) << "sweep " << sweep;
  }
  EXPECT_EQ(parked.stats().audits, respawn.stats().audits);
  EXPECT_EQ(parked.stats().passed, respawn.stats().passed);
  // Per-file audit *outcomes* must agree; entry order within a shard's
  // history may differ only in timestamps, which both fleets read off
  // equivalent stamp clocks.
  for (const std::uint64_t id : parked_fleet.service.file_ids()) {
    EXPECT_EQ(parked_fleet.service.compliance(id).passed,
              respawn_fleet.service.compliance(id).passed)
        << "file " << id;
  }
}

TEST(ShardedEngine, RunOnShardsRunsEveryShardExactlyOnce) {
  Fleet fleet = make_fleet({.files_per_flavour = 1, .seed = 31});
  ShardedAuditEngine::Options opts;
  opts.shards = 4;
  ShardedAuditEngine engine(fleet.service, opts);

  std::vector<std::atomic<unsigned>> hits(4);
  for (int round = 0; round < 3; ++round) {
    engine.run_on_shards([&hits](std::size_t shard) {
      hits[shard].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(hits[s].load(), 3u) << "shard " << s;
  }
  EXPECT_THROW(engine.run_on_shards(nullptr), InvalidArgument);
}

TEST(ShardedEngine, RunOnShardsPropagatesWorkerExceptions) {
  Fleet fleet = make_fleet({.files_per_flavour = 1, .seed = 37});
  ShardedAuditEngine::Options opts;
  opts.shards = 3;
  ShardedAuditEngine engine(fleet.service, opts);

  EXPECT_THROW(engine.run_on_shards([](std::size_t shard) {
    if (shard == 2) throw ProtocolError("shard 2 is unwell");
  }),
               ProtocolError);
  // The pool survives a throwing dispatch: subsequent work still runs on
  // every shard, and regular sweeps still work.
  std::atomic<unsigned> total{0};
  engine.run_on_shards(
      [&total](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), 3u);
  EXPECT_EQ(engine.sweep_once(), fleet.service.size());
}

TEST(ShardedEngine, ParkedPoolReusesWorkersAcrossManySweeps) {
  // Many small sweeps on a parked engine: the pool must neither deadlock
  // nor miss a dispatch (each sweep audits the full registry exactly once).
  Fleet fleet = make_fleet({.files_per_flavour = 2, .seed = 41});
  ShardedAuditEngine::Options opts;
  opts.shards = 4;
  ShardedAuditEngine engine(fleet.service, opts);
  const auto total = static_cast<unsigned>(fleet.service.size());
  for (int sweep = 0; sweep < 8; ++sweep) {
    EXPECT_EQ(engine.sweep_once(), total) << "sweep " << sweep;
  }
  EXPECT_EQ(engine.stats().sweeps, 8u);
  EXPECT_EQ(engine.stats().audits, 8u * total);
}

}  // namespace
}  // namespace geoproof::core

#include "daemon/signal.hpp"

#include <gtest/gtest.h>

#include <csignal>

#include "common/errors.hpp"
#include "common/units.hpp"
#include "net/async.hpp"

namespace geoproof::daemon {
namespace {

TEST(ShutdownSignal, StartsUntriggered) {
  ShutdownSignal shutdown;
  EXPECT_FALSE(shutdown.triggered());
  EXPECT_EQ(shutdown.received(), 0);
  EXPECT_GE(shutdown.fd(), 0);
}

TEST(ShutdownSignal, TriggerRecordsSignalAndWakesPipe) {
  ShutdownSignal shutdown;
  shutdown.trigger(SIGTERM);
  EXPECT_TRUE(shutdown.triggered());
  EXPECT_EQ(shutdown.received(), SIGTERM);
}

TEST(ShutdownSignal, RealSignalDeliveryStopsEventLoop) {
  // The daemon main-loop pattern end to end: raise(SIGTERM) runs the real
  // handler, the pipe wakes the loop, the callback stops it.
  ShutdownSignal shutdown;
  net::EventLoop loop;
  bool saw_signal = false;
  loop.add_fd(shutdown.fd(), /*want_read=*/true, /*want_write=*/false,
              [&](bool, bool, bool) {
                shutdown.consume();
                saw_signal = true;
                loop.stop();
              });
  ASSERT_EQ(std::raise(SIGTERM), 0);
  loop.run();  // returns only if the handler fired and stopped the loop
  loop.remove_fd(shutdown.fd());
  EXPECT_TRUE(saw_signal);
  EXPECT_EQ(shutdown.received(), SIGTERM);
}

TEST(ShutdownSignal, SecondInstanceIsRefusedWhileFirstLives) {
  ShutdownSignal first;
  EXPECT_THROW(ShutdownSignal{}, NetError);
}

TEST(ShutdownSignal, ReinstallableAfterDestruction) {
  { ShutdownSignal first; }
  ShutdownSignal second;
  second.trigger(SIGINT);
  EXPECT_EQ(second.received(), SIGINT);
}

TEST(ShutdownSignal, ConsumeDrainsThePipe) {
  ShutdownSignal shutdown;
  shutdown.trigger(SIGTERM);
  shutdown.trigger(SIGTERM);
  shutdown.consume();
  // A drained pipe must not wake the loop again: pump with a short wait
  // and verify the fd handler does not fire.
  net::EventLoop loop;
  int fired = 0;
  loop.add_fd(shutdown.fd(), /*want_read=*/true, /*want_write=*/false,
              [&](bool, bool, bool) { ++fired; });
  loop.pump(Millis{20.0});
  loop.remove_fd(shutdown.fd());
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace geoproof::daemon

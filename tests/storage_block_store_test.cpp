#include "storage/block_store.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace geoproof::storage {
namespace {

TEST(MemoryBlockStore, PutGetRoundTrip) {
  MemoryBlockStore store;
  store.put(0, bytes_of("alpha"));
  store.put(1, bytes_of("beta"));
  EXPECT_EQ(store.get(0), bytes_of("alpha"));
  EXPECT_EQ(store.get(1), bytes_of("beta"));
  EXPECT_EQ(store.size(), 2u);
}

TEST(MemoryBlockStore, OverwriteReplaces) {
  MemoryBlockStore store;
  store.put(0, bytes_of("old"));
  store.put(0, bytes_of("new"));
  EXPECT_EQ(store.get(0), bytes_of("new"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(MemoryBlockStore, SparsePutFillsGaps) {
  MemoryBlockStore store;
  store.put(5, bytes_of("five"));
  EXPECT_EQ(store.size(), 6u);
  EXPECT_TRUE(store.get(2).empty());
}

TEST(MemoryBlockStore, MissingIndexThrows) {
  MemoryBlockStore store;
  EXPECT_THROW(store.get(0), StorageError);
  EXPECT_THROW(store.at(3), StorageError);
}

TEST(MemoryBlockStore, AtAllowsFaultInjection) {
  MemoryBlockStore store;
  store.put(0, bytes_of("data"));
  store.at(0)[0] ^= 0xff;
  EXPECT_NE(store.get(0), bytes_of("data"));
}

TEST(LruCache, HitAndMiss) {
  LruCache cache(2);
  EXPECT_FALSE(cache.touch(1));
  cache.insert(1);
  EXPECT_TRUE(cache.touch(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.insert(3);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruCache, TouchRefreshesRecency) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  EXPECT_TRUE(cache.touch(1));  // 2 is now LRU
  cache.insert(3);              // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCache, ZeroCapacityNeverStores) {
  LruCache cache(0);
  cache.insert(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, ReinsertExistingRefreshes) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.insert(1);  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(3);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

std::unique_ptr<BlockStore> make_backing(int blocks) {
  auto store = std::make_unique<MemoryBlockStore>();
  for (int i = 0; i < blocks; ++i) {
    store->put(static_cast<std::uint64_t>(i), bytes_of("block"));
  }
  return store;
}

TEST(SimulatedDiskStore, ChargesLookupLatency) {
  SimClock clock;
  SimulatedDiskStore store(make_backing(10), DiskModel(wd2500jd()), clock,
                           SimulatedDiskOptions{.sample_latency = false});
  (void)store.get(3);
  // Deterministic mode charges exactly the paper's average Δt_L.
  EXPECT_NEAR(to_millis(clock.now()).count(), 13.1055, 1e-3);
  (void)store.get(4);
  EXPECT_NEAR(to_millis(clock.now()).count(), 2 * 13.1055, 1e-3);
  EXPECT_NEAR(store.total_latency().count(), 2 * 13.1055, 1e-3);
}

TEST(SimulatedDiskStore, SampledLatencyVaries) {
  SimClock clock;
  SimulatedDiskStore store(make_backing(10), DiskModel(wd2500jd()), clock,
                           SimulatedDiskOptions{.sample_latency = true});
  (void)store.get(0);
  const Nanos t1 = clock.now();
  (void)store.get(1);
  const Nanos t2 = clock.now() - t1;
  EXPECT_NE(t1, t2);  // two independent samples almost surely differ
}

TEST(SimulatedDiskStore, CacheHitIsFast) {
  SimClock clock;
  SimulatedDiskStore store(
      make_backing(10), DiskModel(wd2500jd()), clock,
      SimulatedDiskOptions{.cache_blocks = 4, .sample_latency = false});
  (void)store.get(3);  // miss
  const Nanos after_miss = clock.now();
  (void)store.get(3);  // hit
  const Nanos hit_cost = clock.now() - after_miss;
  EXPECT_EQ(store.cache_hits(), 1u);
  EXPECT_EQ(store.cache_misses(), 1u);
  EXPECT_LT(to_millis(hit_cost).count(), 0.1);
}

TEST(SimulatedDiskStore, PrewarmMakesFirstAccessHit) {
  SimClock clock;
  SimulatedDiskStore store(
      make_backing(10), DiskModel(wd2500jd()), clock,
      SimulatedDiskOptions{.cache_blocks = 4, .sample_latency = false});
  const std::uint64_t indices[] = {1, 2};
  store.prewarm(indices);
  (void)store.get(1);
  EXPECT_EQ(store.cache_hits(), 1u);
  EXPECT_EQ(store.cache_misses(), 0u);
}

TEST(SimulatedDiskStore, PutDoesNotChargeClock) {
  SimClock clock;
  SimulatedDiskStore store(make_backing(1), DiskModel(wd2500jd()), clock,
                           SimulatedDiskOptions{});
  store.put(5, bytes_of("new"));
  EXPECT_EQ(clock.now(), Nanos{0});
  EXPECT_EQ(store.size(), 6u);
}

TEST(SimulatedDiskStore, NullBackingThrows) {
  SimClock clock;
  EXPECT_THROW(SimulatedDiskStore(nullptr, DiskModel(wd2500jd()), clock,
                                  SimulatedDiskOptions{}),
               InvalidArgument);
}

TEST(SimulatedDiskStore, FasterDiskLowerLatency) {
  SimClock clock_fast, clock_slow;
  SimulatedDiskStore fast(make_backing(10), DiskModel(ibm36z15()), clock_fast,
                          SimulatedDiskOptions{.sample_latency = false});
  SimulatedDiskStore slow(make_backing(10), DiskModel(wd2500jd()), clock_slow,
                          SimulatedDiskOptions{.sample_latency = false});
  (void)fast.get(0);
  (void)slow.get(0);
  EXPECT_LT(clock_fast.now(), clock_slow.now());
}

}  // namespace
}  // namespace geoproof::storage

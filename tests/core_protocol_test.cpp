// End-to-end GeoProof protocol tests over the simulated deployment:
// the honest path and every §V attack scenario.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"

namespace geoproof::core {
namespace {

DeploymentConfig fast_config() {
  DeploymentConfig cfg;
  // Small ECC geometry: encoding stays fast while every pipeline property
  // holds; the paper-scale geometry is covered by por tests and benches.
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.por.tag.tag_bits = 20;  // paper's tag width
  cfg.provider.location = {-27.47, 153.02};  // Brisbane data centre
  cfg.provider.name = "bne-dc1";
  cfg.verifier.signer_height = 5;  // 32 audits: plenty per test, fast setup
  return cfg;
}

Bytes test_file(std::size_t size, std::uint64_t seed = 1) {
  Rng rng(seed);
  return rng.next_bytes(size);
}

TEST(GeoProofProtocol, HonestProviderAccepted) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  const AuditReport report = world.run_audit(record, 20);
  EXPECT_TRUE(report.accepted) << report.summary();
  EXPECT_EQ(report.bad_tags, 0u);
  EXPECT_EQ(report.timing_violations, 0u);
  // RTTs are LAN + one disk look-up: inside the calibrated budget, above
  // the bare LAN time.
  EXPECT_LT(report.max_rtt.count(),
            world.auditor().policy().max_round_trip().count());
  EXPECT_GT(report.max_rtt.count(), 1.0);
}

TEST(GeoProofProtocol, RepeatedAuditsAllPass) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  for (int i = 0; i < 10; ++i) {
    const AuditReport report = world.run_audit(record, 10);
    EXPECT_TRUE(report.accepted) << "audit " << i << ": " << report.summary();
  }
}

TEST(GeoProofProtocol, CorruptedSegmentsCaughtByTags) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  Rng rng(7);
  // Corrupt 30% of segments: a 20-segment challenge virtually always hits.
  const unsigned corrupted = world.provider().corrupt_segments(1, 0.30, rng);
  ASSERT_GT(corrupted, 0u);
  const AuditReport report = world.run_audit(record, 20);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kTag)) << report.summary();
  EXPECT_GT(report.bad_tags, 0u);
}

TEST(GeoProofProtocol, SingleTamperedSegmentCaughtWhenChallenged) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  world.provider().tamper_segment(1, 3, 0xff);
  // Challenge every segment: the damaged one must be challenged and fail.
  const AuditReport report =
      world.run_audit(record, static_cast<std::uint32_t>(record.n_segments));
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.bad_tags, 1u);
}

TEST(GeoProofProtocol, RelayToFarDataCentreCaughtByTiming) {
  // Fig. 6 with a distant P~: Brisbane -> Sydney (~730 km) far exceeds the
  // calibrated budget even with the fastest disk.
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  world.deploy_remote_relay(1, Kilometers{730.0}, storage::ibm36z15());
  const AuditReport report = world.run_audit(record, 20);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kTiming)) << report.summary();
  // Tags are fine - the data is intact, just in the wrong place.
  EXPECT_EQ(report.bad_tags, 0u);
  EXPECT_GT(report.max_rtt.count(),
            world.auditor().policy().max_round_trip().count());
}

TEST(GeoProofProtocol, VeryNearRelayInsideBoundEvadesTiming) {
  // GeoProof bounds distance, it does not pinpoint: a relay to a data
  // centre *inside* the budget radius (§V-C(b)'s ~360 km with the fastest
  // disk; ~290 km under this budget/Internet model) is indistinguishable
  // from a slow local disk. Deterministic latencies make the boundary
  // crisp.
  DeploymentConfig cfg = fast_config();
  cfg.provider.sample_disk_latency = false;
  cfg.lan_jitter_seed = 0;
  cfg.internet.jitter_stddev_ms = 0;
  cfg.internet_jitter_seed = 0;
  SimulatedDeployment world(cfg);
  const auto record = world.upload(test_file(40000), 1);
  world.deploy_remote_relay(1, Kilometers{50.0}, storage::ibm36z15());
  const AuditReport in_bound = world.run_audit(record, 20);
  EXPECT_TRUE(in_bound.accepted) << in_bound.summary();

  // ...while past the bound the same setup is caught.
  world.restore_local_service();
  world.deploy_remote_relay(1, Kilometers{400.0}, storage::ibm36z15());
  const AuditReport out_of_bound = world.run_audit(record, 20);
  EXPECT_FALSE(out_of_bound.accepted);
  EXPECT_TRUE(out_of_bound.failed(AuditFailure::kTiming));
}

TEST(GeoProofProtocol, RestoreLocalServicePassesAgain) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  world.deploy_remote_relay(1, Kilometers{730.0}, storage::ibm36z15());
  EXPECT_FALSE(world.run_audit(record, 10).accepted);
  world.restore_local_service();
  EXPECT_TRUE(world.run_audit(record, 10).accepted);
}

TEST(GeoProofProtocol, GpsSpoofingDetectedByPositionCheck) {
  // The provider moves the device (or spoofs its GPS) to claim a Sydney
  // device is in Brisbane... here: the device reports Sydney while the
  // contract says Brisbane.
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  world.verifier().gps().spoof({-33.8688, 151.2093});  // Sydney
  const AuditReport report = world.run_audit(record, 10);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kPosition));
  EXPECT_GT(report.position_error.value, 700.0);
}

TEST(GeoProofProtocol, SmallGpsDriftTolerated) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  // 1-2 km of drift is inside the default 5 km tolerance.
  world.verifier().gps().spoof({-27.48, 153.04});
  const AuditReport report = world.run_audit(record, 10);
  EXPECT_TRUE(report.accepted) << report.summary();
}

TEST(GeoProofProtocol, ReplayedTranscriptRejected) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  const AuditRequest request = world.auditor().make_request(record, 10);
  const SignedTranscript transcript = world.verifier().run_audit(request);
  EXPECT_TRUE(world.auditor().verify(record, transcript).accepted);
  // Replaying the very same transcript must fail: nonce consumed.
  const AuditReport replay = world.auditor().verify(record, transcript);
  EXPECT_FALSE(replay.accepted);
  EXPECT_TRUE(replay.failed(AuditFailure::kNonceMismatch));
}

TEST(GeoProofProtocol, ForeignNonceRejected) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  AuditRequest forged;
  forged.file_id = record.file_id;
  forged.n_segments = record.n_segments;
  forged.k = 5;
  forged.nonce = bytes_of("never-issued-by-the-tpa");
  const SignedTranscript transcript = world.verifier().run_audit(forged);
  const AuditReport report = world.auditor().verify(record, transcript);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kNonceMismatch));
}

TEST(GeoProofProtocol, TamperedTranscriptSignatureFails) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  const AuditRequest request = world.auditor().make_request(record, 10);
  SignedTranscript transcript = world.verifier().run_audit(request);
  // The provider intercepts the transcript and shaves the recorded RTTs.
  for (auto& rtt : transcript.transcript.rtts) rtt = Millis{0.5};
  const AuditReport report = world.auditor().verify(record, transcript);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.failed(AuditFailure::kSignature));
}

TEST(GeoProofProtocol, SegmentSubstitutionCaught) {
  // Provider answers challenge c_j with a *different* genuine segment:
  // the index inside the MAC catches it even though the bytes are valid.
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  const AuditRequest request = world.auditor().make_request(record, 10);
  SignedTranscript transcript = world.verifier().run_audit(request);
  std::swap(transcript.transcript.segments[0],
            transcript.transcript.segments[1]);
  const AuditReport report = world.auditor().verify(record, transcript);
  EXPECT_FALSE(report.accepted);
  // Both the signature (transcript altered) and tags break.
  EXPECT_TRUE(report.failed(AuditFailure::kSignature));
}

TEST(GeoProofProtocol, ChallengeCountMatchesRequest) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  const AuditRequest request = world.auditor().make_request(record, 17);
  const SignedTranscript transcript = world.verifier().run_audit(request);
  EXPECT_EQ(transcript.transcript.challenge.size(), 17u);
  EXPECT_EQ(transcript.transcript.rtts.size(), 17u);
  EXPECT_EQ(transcript.transcript.segments.size(), 17u);
}

TEST(GeoProofProtocol, AuditsConsumeSignerKeys) {
  DeploymentConfig cfg = fast_config();
  cfg.verifier.signer_height = 2;  // only 4 audits possible
  SimulatedDeployment world(cfg);
  const auto record = world.upload(test_file(20000), 1);
  EXPECT_EQ(world.verifier().audits_remaining(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(world.run_audit(record, 5).accepted);
  }
  EXPECT_EQ(world.verifier().audits_remaining(), 0u);
  EXPECT_THROW(world.run_audit(record, 5), Error);
}

TEST(GeoProofProtocol, FasterDiskLowersRtt) {
  DeploymentConfig slow_cfg = fast_config();
  slow_cfg.provider.disk = storage::find_disk("Hitachi DK23DA").value();
  slow_cfg.provider.sample_disk_latency = false;
  slow_cfg.lan_jitter_seed = 0;
  SimulatedDeployment slow(slow_cfg);

  DeploymentConfig fast_cfg = fast_config();
  fast_cfg.provider.disk = storage::ibm36z15();
  fast_cfg.provider.sample_disk_latency = false;
  fast_cfg.lan_jitter_seed = 0;
  SimulatedDeployment fast(fast_cfg);

  const Bytes file = test_file(40000);
  const auto rec_slow = slow.upload(file, 1);
  const auto rec_fast = fast.upload(file, 1);
  const AuditReport r_slow = slow.run_audit(rec_slow, 10);
  const AuditReport r_fast = fast.run_audit(rec_fast, 10);
  EXPECT_GT(r_slow.mean_rtt.count(), r_fast.mean_rtt.count());
}

TEST(GeoProofProtocol, PrecachedSegmentsShaveLatency) {
  // A provider that pre-warms a RAM cache answers faster than the disk
  // budget assumes — the cache ablation bench quantifies this; here we just
  // verify the mechanism is visible end-to-end.
  DeploymentConfig cfg = fast_config();
  cfg.provider.cache_segments = 4096;
  cfg.provider.sample_disk_latency = false;
  cfg.lan_jitter_seed = 0;
  SimulatedDeployment world(cfg);
  const auto record = world.upload(test_file(40000), 1);

  std::vector<std::uint64_t> all(record.n_segments);
  for (std::uint64_t i = 0; i < record.n_segments; ++i) {
    all[static_cast<std::size_t>(i)] = i;
  }
  world.provider().prewarm(1, all);
  const AuditReport cached = world.run_audit(record, 10);
  EXPECT_TRUE(cached.accepted);
  // Cache hit latency (0.05 ms) + LAN: far under one disk look-up.
  EXPECT_LT(cached.max_rtt.count(), 2.0);
}

TEST(GeoProofProtocol, ContractTimeCalibration) {
  // §V-C(b): measure the installed equipment at contract time, then judge
  // every audit against the measured budget.
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(40000), 1);
  const LatencyPolicy policy = world.calibrate_policy(record, 100, 1.25);
  // The empirical budget sits above honest RTTs but far below relay RTTs.
  EXPECT_GT(policy.max_round_trip().count(), 10.0);
  EXPECT_LT(policy.max_round_trip().count(), 40.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(world.run_audit(record, 10).accepted) << i;
  }
  world.deploy_remote_relay(1, Kilometers{730.0}, storage::ibm36z15());
  EXPECT_FALSE(world.run_audit(record, 10).accepted);
}

TEST(GeoProofProtocol, CalibrationValidatesArguments) {
  SimulatedDeployment world(fast_config());
  const auto record = world.upload(test_file(20000), 1);
  EXPECT_THROW(world.calibrate_policy(record, 0), InvalidArgument);
  EXPECT_THROW(world.calibrate_policy(record, 10, 0.5), InvalidArgument);
}

TEST(GeoProofProtocol, AuditTrafficIsTinyAndFileSizeIndependent) {
  // §IV: "the size of the information exchanged between client and server
  // is very small and may even be independent of the size of stored data".
  SimulatedDeployment world(fast_config());
  const auto small_file = world.upload(test_file(20000, 1), 1);
  const auto big_file = world.upload(test_file(400000, 2), 2);
  const AuditReport r_small = world.run_audit(small_file, 10);
  const AuditReport r_big = world.run_audit(big_file, 10);
  // Identical k -> identical traffic, regardless of a 20x file size gap.
  EXPECT_EQ(r_small.bytes_exchanged, r_big.bytes_exchanged);
  // 10 rounds x (16-byte request + 83-byte segment) = 990 bytes.
  EXPECT_EQ(r_small.bytes_exchanged, 10u * (16 + 83));
}

TEST(GeoProofProtocol, MultipleFilesIndependent) {
  SimulatedDeployment world(fast_config());
  const auto rec_a = world.upload(test_file(30000, 1), 1);
  const auto rec_b = world.upload(test_file(30000, 2), 2);
  Rng rng(9);
  world.provider().corrupt_segments(2, 0.5, rng);
  EXPECT_TRUE(world.run_audit(rec_a, 15).accepted);
  EXPECT_FALSE(world.run_audit(rec_b, 15).accepted);
}

}  // namespace
}  // namespace geoproof::core

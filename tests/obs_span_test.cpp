// SpanRecorder semantics: ring retention order, the logfmt dump's
// zero-phase omission, and the JSON shape /statusz embeds.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace geoproof::obs {
namespace {

Span make_span(std::uint64_t id) {
  Span span;
  span.id = id;
  span.kind = "audit";
  span.start = Nanos{1'000};
  span.set_phase(Phase::kChallenge, Nanos{10});
  span.set_phase(Phase::kExchange, Nanos{20});
  span.total = Nanos{30};
  return span;
}

TEST(Span, PhaseNamesFollowTheProtocolTimeline) {
  EXPECT_STREQ(phase_name(Phase::kChallenge), "challenge");
  EXPECT_STREQ(phase_name(Phase::kExchange), "exchange");
  EXPECT_STREQ(phase_name(Phase::kVerify), "verify");
  EXPECT_STREQ(phase_name(Phase::kRefit), "refit");
  EXPECT_STREQ(phase_name(Phase::kCommit), "commit");
}

TEST(SpanRecorder, RetainsInOrderUntilFull) {
  SpanRecorder recorder(4);
  for (std::uint64_t id = 1; id <= 3; ++id) recorder.record(make_span(id));
  const std::vector<Span> spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[2].id, 3u);
  EXPECT_EQ(recorder.recorded(), 3u);
}

TEST(SpanRecorder, RingWrapKeepsTheMostRecentOldestFirst) {
  SpanRecorder recorder(4);
  for (std::uint64_t id = 1; id <= 10; ++id) recorder.record(make_span(id));
  const std::vector<Span> spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].id, 7u);
  EXPECT_EQ(spans[1].id, 8u);
  EXPECT_EQ(spans[2].id, 9u);
  EXPECT_EQ(spans[3].id, 10u);
  EXPECT_EQ(recorder.recorded(), 10u);
}

TEST(SpanRecorder, ZeroCapacityClampsToOne) {
  SpanRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.record(make_span(1));
  recorder.record(make_span(2));
  const std::vector<Span> spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, 2u);
}

TEST(SpanRecorder, LogfmtOmitsUntimedPhases) {
  SpanRecorder recorder;
  Span span = make_span(42);
  span.ok = false;
  recorder.record(span);
  std::ostringstream os;
  recorder.dump_logfmt(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("span kind=audit id=42 ok=0"), std::string::npos);
  EXPECT_NE(line.find("start_ns=1000"), std::string::npos);
  EXPECT_NE(line.find("challenge_ns=10"), std::string::npos);
  EXPECT_NE(line.find("exchange_ns=20"), std::string::npos);
  EXPECT_NE(line.find("total_ns=30"), std::string::npos);
  EXPECT_EQ(line.find("verify_ns"), std::string::npos);
  EXPECT_EQ(line.find("refit_ns"), std::string::npos);
  EXPECT_EQ(line.find("commit_ns"), std::string::npos);
}

TEST(SpanRecorder, JsonDumpIsAnArrayOfSpanObjects) {
  SpanRecorder recorder;
  recorder.record(make_span(7));
  const std::string json = recorder.dump_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"kind\":\"audit\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"challenge_ns\":10"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\":30"), std::string::npos);
  EXPECT_EQ(json.find("refit_ns"), std::string::npos);
}

}  // namespace
}  // namespace geoproof::obs

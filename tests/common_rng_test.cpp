#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/errors.hpp"

namespace geoproof {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_THROW(rng.next_in(2, 1), InvalidArgument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean should be ~0.5 for a uniform generator.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(Rng, NextBytesLengthAndDeterminism) {
  Rng a(21), b(21);
  const Bytes x = a.next_bytes(37);
  const Bytes y = b.next_bytes(37);
  EXPECT_EQ(x.size(), 37u);
  EXPECT_EQ(x, y);
  EXPECT_TRUE(a.next_bytes(0).empty());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng parent(55);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(33);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(34);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  shuffle(v, rng);
  EXPECT_NE(v, orig);
}

// Regression (sharded audit engine): shard workers must draw from
// independent per-shard streams instead of racing on one generator.

TEST(Rng, StreamIsDeterministic) {
  Rng a = Rng::stream(0x5eed, 3);
  Rng b = Rng::stream(0x5eed, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependentOfEachOther) {
  // Distinct stream indices of one root seed produce disjoint prefixes
  // (overlap would correlate the shards' schedules).
  Rng s0 = Rng::stream(0x5eed, 0);
  Rng s1 = Rng::stream(0x5eed, 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s0.next_u64());
  unsigned collisions = 0;
  for (int i = 0; i < 1000; ++i) collisions += seen.count(s1.next_u64());
  EXPECT_EQ(collisions, 0u);

  // Drawing from one stream does not disturb another: a stream's sequence
  // is the same whether or not a sibling stream's draws are interleaved
  // (guards against hidden shared state inside stream()).
  std::vector<std::uint64_t> solo;
  {
    Rng s = Rng::stream(0x5eed, 1);
    for (int i = 0; i < 100; ++i) solo.push_back(s.next_u64());
  }
  Rng interleaved = Rng::stream(0x5eed, 1);
  Rng sibling = Rng::stream(0x5eed, 0);
  for (int i = 0; i < 100; ++i) {
    sibling.next_u64();
    EXPECT_EQ(interleaved.next_u64(), solo[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, StreamsDifferAcrossRootSeeds) {
  Rng a = Rng::stream(1, 0);
  Rng b = Rng::stream(2, 0);
  bool differ = false;
  for (int i = 0; i < 16; ++i) differ |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace geoproof

#include "core/audit_service.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"

namespace geoproof::core {
namespace {

DeploymentConfig fast_config() {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.location = {-27.47, 153.02};
  return cfg;
}

struct ServiceFixture {
  SimulatedDeployment world{fast_config()};
  Auditor::FileRecord record;
  ServiceFixture() {
    Rng rng(3);
    record = world.upload(rng.next_bytes(30000), 1);
  }
};

TEST(AuditService, RunOnceRecordsHistory) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  const AuditReport& report = service.run_once(f.world.clock());
  EXPECT_TRUE(report.accepted);
  ASSERT_EQ(service.history().size(), 1u);
  EXPECT_EQ(service.compliance().total, 1u);
  EXPECT_EQ(service.compliance().passed, 1u);
}

TEST(AuditService, ZeroChallengeRejected) {
  ServiceFixture f;
  EXPECT_THROW(
      AuditService(f.world.auditor(), f.world.verifier(), f.record, 0),
      InvalidArgument);
}

TEST(AuditService, ScheduledAuditsRunAtIntervals) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 5);
  const Nanos hour = std::chrono::duration_cast<Nanos>(std::chrono::hours(1));
  const Nanos start = f.world.clock().now() + hour;
  service.schedule(f.world.queue(), f.world.clock(), start, hour, 5);
  f.world.queue().run_all();
  ASSERT_EQ(service.history().size(), 5u);
  // Entries are time-ordered and roughly an hour apart. Audits start
  // exactly on the hour but the recorded time is completion, and each
  // audit consumes a few virtual milliseconds, so gaps float around the
  // hour by up to one audit's duration either way.
  const Nanos tolerance =
      std::chrono::duration_cast<Nanos>(std::chrono::seconds(5));
  for (std::size_t i = 1; i < 5; ++i) {
    const Nanos gap = service.history()[i].at - service.history()[i - 1].at;
    EXPECT_GE(gap, hour - tolerance);
    EXPECT_LT(gap, hour + tolerance);
  }
  EXPECT_TRUE(service.compliance().meets(0.99));
}

TEST(AuditService, ComplianceTracksFailures) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  // Two clean audits.
  (void)service.run_once(f.world.clock());
  (void)service.run_once(f.world.clock());
  // Provider relocates the data; subsequent audits fail.
  f.world.deploy_remote_relay(1, Kilometers{1500.0}, storage::ibm36z15());
  (void)service.run_once(f.world.clock());
  (void)service.run_once(f.world.clock());
  (void)service.run_once(f.world.clock());

  const auto compliance = service.compliance();
  EXPECT_EQ(compliance.total, 5u);
  EXPECT_EQ(compliance.passed, 2u);
  EXPECT_FALSE(compliance.meets(0.99));
  EXPECT_EQ(service.consecutive_failures(), 3u);
}

TEST(AuditService, ConsecutiveFailuresResetOnRecovery) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  f.world.deploy_remote_relay(1, Kilometers{1500.0}, storage::ibm36z15());
  (void)service.run_once(f.world.clock());
  EXPECT_EQ(service.consecutive_failures(), 1u);
  f.world.restore_local_service();
  (void)service.run_once(f.world.clock());
  EXPECT_EQ(service.consecutive_failures(), 0u);
}

TEST(AuditService, EmptyHistoryIsCompliant) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  EXPECT_EQ(service.compliance().total, 0u);
  EXPECT_DOUBLE_EQ(service.compliance().rate(), 1.0);
  EXPECT_EQ(service.consecutive_failures(), 0u);
}

}  // namespace
}  // namespace geoproof::core

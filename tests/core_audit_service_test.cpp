#include "core/audit_service.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "core/dynamic_geoproof.hpp"
#include "core/provider.hpp"

namespace geoproof::core {
namespace {

DeploymentConfig fast_config() {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.location = {-27.47, 153.02};
  return cfg;
}

struct ServiceFixture {
  SimulatedDeployment world{fast_config()};
  Auditor::FileRecord record;
  ServiceFixture() {
    Rng rng(3);
    record = world.upload(rng.next_bytes(30000), 1);
  }
};

TEST(AuditService, RunOnceRecordsHistory) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  const AuditReport& report = service.run_once(f.world.clock());
  EXPECT_TRUE(report.accepted);
  ASSERT_EQ(service.history().size(), 1u);
  EXPECT_EQ(service.compliance().total, 1u);
  EXPECT_EQ(service.compliance().passed, 1u);
}

TEST(AuditService, ZeroChallengeRejected) {
  ServiceFixture f;
  EXPECT_THROW(
      AuditService(f.world.auditor(), f.world.verifier(), f.record, 0),
      InvalidArgument);
}

TEST(AuditService, ScheduledAuditsRunAtIntervals) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 5);
  const Nanos hour = std::chrono::duration_cast<Nanos>(std::chrono::hours(1));
  const Nanos start = f.world.clock().now() + hour;
  service.schedule(f.world.queue(), f.world.clock(), start, hour, 5);
  f.world.queue().run_all();
  ASSERT_EQ(service.history().size(), 5u);
  // Entries are time-ordered and roughly an hour apart. Audits start
  // exactly on the hour but the recorded time is completion, and each
  // audit consumes a few virtual milliseconds, so gaps float around the
  // hour by up to one audit's duration either way.
  const Nanos tolerance =
      std::chrono::duration_cast<Nanos>(std::chrono::seconds(5));
  for (std::size_t i = 1; i < 5; ++i) {
    const Nanos gap = service.history()[i].at - service.history()[i - 1].at;
    EXPECT_GE(gap, hour - tolerance);
    EXPECT_LT(gap, hour + tolerance);
  }
  EXPECT_TRUE(service.compliance().meets(0.99));
}

TEST(AuditService, ComplianceTracksFailures) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  // Two clean audits.
  (void)service.run_once(f.world.clock());
  (void)service.run_once(f.world.clock());
  // Provider relocates the data; subsequent audits fail.
  f.world.deploy_remote_relay(1, Kilometers{1500.0}, storage::ibm36z15());
  (void)service.run_once(f.world.clock());
  (void)service.run_once(f.world.clock());
  (void)service.run_once(f.world.clock());

  const auto compliance = service.compliance();
  EXPECT_EQ(compliance.total, 5u);
  EXPECT_EQ(compliance.passed, 2u);
  EXPECT_FALSE(compliance.meets(0.99));
  EXPECT_EQ(service.consecutive_failures(), 3u);
}

TEST(AuditService, ConsecutiveFailuresResetOnRecovery) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  f.world.deploy_remote_relay(1, Kilometers{1500.0}, storage::ibm36z15());
  (void)service.run_once(f.world.clock());
  EXPECT_EQ(service.consecutive_failures(), 1u);
  f.world.restore_local_service();
  (void)service.run_once(f.world.clock());
  EXPECT_EQ(service.consecutive_failures(), 0u);
}

TEST(AuditService, EmptyHistoryIsCompliant) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  EXPECT_EQ(service.compliance().total, 0u);
  EXPECT_DOUBLE_EQ(service.compliance().rate(), 1.0);
  EXPECT_EQ(service.consecutive_failures(), 0u);
}

TEST(AuditService, DuplicateFileIdRejected) {
  ServiceFixture f;
  AuditService service(f.world.auditor(), f.world.verifier(), f.record, 10);
  EXPECT_THROW(
      service.add(f.world.auditor(), f.world.verifier(), f.record, 10),
      InvalidArgument);
  EXPECT_THROW(service.run_once(f.world.clock(), /*file_id=*/999),
               InvalidArgument);
}

// One service instance, two flavours, two files, one simulated world: a
// MAC-audited file and a dynamic-POR-audited file scheduled through the
// same registry on one event queue. This is the heterogeneous loop the
// sharded audit engine and the multicloud sweeps are built on.
struct MixedWorld {
  static constexpr net::GeoPoint kSite{-27.47, 153.02};
  const Bytes master = bytes_of("mixed-scheme master key");
  por::PorParams params;
  SimClock clock;
  EventQueue queue{clock};
  net::SimAuditTimer timer{clock};

  // MAC target: CloudProvider-backed.
  std::unique_ptr<CloudProvider> provider;
  std::unique_ptr<net::SimRequestChannel> mac_channel;
  std::unique_ptr<VerifierDevice> mac_verifier;
  std::unique_ptr<MacAuditScheme> mac_scheme;
  FileRecord mac_record;

  // Dynamic target: Merkle-proof provider.
  std::unique_ptr<por::DynamicPorProvider> dyn_provider;
  std::unique_ptr<DynamicProviderService> dyn_provider_service;
  std::unique_ptr<net::SimRequestChannel> dyn_channel;
  std::unique_ptr<VerifierDevice> dyn_verifier;
  std::unique_ptr<DynamicAuditScheme> dyn_scheme;
  FileRecord dyn_record;

  MixedWorld() {
    params.ecc_data_blocks = 48;
    params.ecc_parity_blocks = 16;
    Rng rng(11);
    const por::PorEncoder encoder(params);
    const auto lan = [this](net::RequestHandler handler, std::uint64_t seed) {
      return std::make_unique<net::SimRequestChannel>(
          clock, net::lan_latency(net::LanModel{}, Kilometers{0.1}, seed),
          std::move(handler));
    };
    AuditorConfig base;
    base.master_key = master;
    base.expected_position = kSite;
    base.policy = LatencyPolicy::for_disk(storage::wd2500jd());
    VerifierDevice::Config vcfg;
    vcfg.position = kSite;
    vcfg.signer_height = 4;  // 16 audits per device: exhaustion is testable

    provider = std::make_unique<CloudProvider>(
        CloudProvider::Config{.name = "dc", .location = kSite}, clock);
    const por::EncodedFile mac_file =
        encoder.encode(rng.next_bytes(25000), 1, master);
    provider->store(mac_file);
    mac_record = FileRecord{1, mac_file.n_segments, 0};
    mac_channel = lan(provider->handler(), 5);
    mac_verifier =
        std::make_unique<VerifierDevice>(vcfg, *mac_channel, timer);
    AuditorConfig mac_cfg = base;
    mac_cfg.verifier_pk = mac_verifier->public_key();
    mac_scheme = std::make_unique<MacAuditScheme>(mac_cfg, params);

    por::EncodedFile dyn_file = encoder.encode(rng.next_bytes(25000), 2,
                                               master);
    dyn_provider = std::make_unique<por::DynamicPorProvider>(
        std::move(dyn_file));
    dyn_provider_service = std::make_unique<DynamicProviderService>(
        *dyn_provider, clock, storage::DiskModel(storage::wd2500jd()));
    dyn_channel = lan(dyn_provider_service->handler(), 7);
    dyn_verifier =
        std::make_unique<VerifierDevice>(vcfg, *dyn_channel, timer);
    AuditorConfig dyn_cfg = base;
    dyn_cfg.verifier_pk = dyn_verifier->public_key();
    dyn_scheme = std::make_unique<DynamicAuditScheme>(dyn_cfg, params);
    dyn_record = dyn_scheme->register_file(2, dyn_provider->root(),
                                           dyn_provider->n_segments());
  }
};

TEST(AuditService, MixedSchemesThroughOneService) {
  MixedWorld w;
  AuditService service;
  const auto mac_id =
      service.add(*w.mac_scheme, *w.mac_verifier, w.mac_record, 8, "mac/dc");
  const auto dyn_id = service.add(*w.dyn_scheme, *w.dyn_verifier,
                                  w.dyn_record, 8, "dynamic/dc");
  ASSERT_EQ(service.size(), 2u);

  const Nanos hour = std::chrono::duration_cast<Nanos>(std::chrono::hours(1));
  service.schedule(w.queue, w.clock, w.clock.now() + hour, hour, 4);
  w.queue.run_all();

  EXPECT_EQ(service.history(mac_id).size(), 4u);
  EXPECT_EQ(service.history(dyn_id).size(), 4u);
  EXPECT_EQ(service.compliance(mac_id).passed, 4u);
  EXPECT_EQ(service.compliance(dyn_id).passed, 4u);
  EXPECT_EQ(service.compliance().total, 8u);  // aggregate across registry

  // The dynamic provider rots; only its registration's compliance drops.
  for (std::uint64_t i = 0; i < w.dyn_record.n_segments; ++i) {
    w.dyn_provider->tamper(i, 0, 0x80);
  }
  EXPECT_EQ(service.run_all(w.clock), 1u);  // one of two passes
  EXPECT_TRUE(service.history(mac_id).back().report.accepted);
  EXPECT_FALSE(service.history(dyn_id).back().report.accepted);
  EXPECT_TRUE(service.history(dyn_id).back().report.failed(
      AuditFailure::kTag));
  EXPECT_EQ(service.consecutive_failures(dyn_id), 1u);
  EXPECT_EQ(service.consecutive_failures(mac_id), 0u);
  EXPECT_FALSE(service.summary().empty());

  // Mixed-registry service: the no-id single-registration conveniences
  // must refuse rather than guess.
  EXPECT_THROW(service.run_once(w.clock), InvalidArgument);
  EXPECT_THROW(service.history(), InvalidArgument);
}

TEST(AuditService, SchemeErrorInScheduledAuditDoesNotAbortQueue) {
  // The verifier device's signing key is finite; exhausting it mid-schedule
  // throws from inside the queue callback. That must surface as kAborted
  // entries for the affected registration, not kill everyone's audits.
  MixedWorld w;
  AuditService service;
  const auto mac_id =
      service.add(*w.mac_scheme, *w.mac_verifier, w.mac_record, 8);
  const auto dyn_id = service.add(*w.dyn_scheme, *w.dyn_verifier,
                                  w.dyn_record, 8);
  // Burn the MAC device's signing keys down to one remaining audit.
  while (w.mac_verifier->audits_remaining() > 1) {
    (void)service.run_once(w.clock, mac_id);
  }
  const std::size_t before = service.history(mac_id).size();

  const Nanos hour = std::chrono::duration_cast<Nanos>(std::chrono::hours(1));
  service.schedule(w.queue, w.clock, w.clock.now() + hour, hour, 3);
  w.queue.run_all();  // must not throw

  // MAC: one real audit, then two aborted entries; dynamic untouched.
  ASSERT_EQ(service.history(mac_id).size(), before + 3);
  EXPECT_TRUE(service.history(mac_id)[before].report.accepted);
  EXPECT_TRUE(service.history(mac_id).back().report.failed(
      AuditFailure::kAborted));
  EXPECT_EQ(service.history(dyn_id).size(), 3u);
  EXPECT_EQ(service.compliance(dyn_id).passed, 3u);
  EXPECT_GE(service.consecutive_failures(mac_id), 2u);
}

TEST(AuditService, RemoveAfterScheduleDropsOnlyThatRegistration) {
  // A registration removed after its audits were scheduled must not blow
  // up the event queue; the surviving registration's audits still run.
  MixedWorld w;
  AuditService service;
  const auto mac_id =
      service.add(*w.mac_scheme, *w.mac_verifier, w.mac_record, 8);
  const auto dyn_id = service.add(*w.dyn_scheme, *w.dyn_verifier,
                                  w.dyn_record, 8);
  const Nanos hour = std::chrono::duration_cast<Nanos>(std::chrono::hours(1));
  service.schedule(w.queue, w.clock, w.clock.now() + hour, hour, 3);
  service.remove(dyn_id);
  w.queue.run_all();
  EXPECT_EQ(service.history(mac_id).size(), 3u);
  EXPECT_FALSE(service.has(dyn_id));
  EXPECT_EQ(service.compliance().total, 3u);
}

}  // namespace
}  // namespace geoproof::core

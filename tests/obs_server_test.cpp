// The scrape endpoint, twice over: handle_http_scrape() request parsing
// in-process, and MetricsServer serving GET /metrics + /statusz over a
// real kernel socket — including the full instrumented stack (engine-style
// counters, AuditService + TrackService stats snapshots) exceeding the
// twelve-series floor the live-fleet acceptance asks for.
#include "obs/metrics_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "core/audit_service.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "track/track_service.hpp"

namespace geoproof::obs {
namespace {

// ── handle_http_scrape (no sockets) ──────────────────────────────────────

TEST(HttpScrape, ServesMetricsAsPrometheusText) {
  Registry registry;
  registry.counter("geoproof_audits_total").inc(5);
  const std::string response =
      handle_http_scrape(registry, nullptr, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("geoproof_audits_total 5"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST(HttpScrape, ServesStatuszWithSpans) {
  Registry registry;
  registry.counter("geoproof_audits_total").inc();
  SpanRecorder spans;
  Span span;
  span.id = 3;
  span.kind = "batch";
  span.total = Nanos{99};
  spans.record(span);
  const std::string response =
      handle_http_scrape(registry, &spans, "GET /statusz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(response.find("\"spans\":["), std::string::npos);
  EXPECT_NE(response.find("\"kind\":\"batch\""), std::string::npos);
}

TEST(HttpScrape, StatuszWithoutRecorderOmitsSpans) {
  Registry registry;
  const std::string response =
      handle_http_scrape(registry, nullptr, "GET /statusz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(response.find("\"spans\""), std::string::npos);
}

TEST(HttpScrape, StripsQueryStringsAndToleratesBareLf) {
  Registry registry;
  EXPECT_NE(handle_http_scrape(registry, nullptr,
                               "GET /metrics?format=prometheus HTTP/1.1\n\n")
                .find("200 OK"),
            std::string::npos);
}

TEST(HttpScrape, RejectsWhatItDoesNotServe) {
  Registry registry;
  EXPECT_NE(handle_http_scrape(registry, nullptr,
                               "GET /nope HTTP/1.0\r\n\r\n")
                .find("404"),
            std::string::npos);
  EXPECT_NE(handle_http_scrape(registry, nullptr,
                               "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(handle_http_scrape(registry, nullptr, "garbage\r\n\r\n")
                .find("400"),
            std::string::npos);
}

// ── MetricsServer over a real socket ─────────────────────────────────────

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // server closes after one response (HTTP/1.0)
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsServer, ScrapesALiveRegistryOverTcp) {
  Registry registry;
  Counter& audits = registry.counter("geoproof_audits_total");
  audits.inc(2);
  MetricsServer server(registry, MetricsServer::Options{});
  ASSERT_NE(server.port(), 0) << "port 0 must bind a kernel-chosen port";

  std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("geoproof_audits_total 2"), std::string::npos);

  // The scrape reads live state, not a bind-time copy.
  audits.inc(3);
  response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("geoproof_audits_total 5"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
}

// Count distinct geoproof_* series names in a /metrics body.
std::set<std::string> series_names(const std::string& body) {
  std::set<std::string> names;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) continue;
    const std::string name = line.substr(0, name_end);
    if (name.rfind("geoproof_", 0) == 0) names.insert(name);
  }
  return names;
}

TEST(MetricsServer, InstrumentedStackServesAtLeastTwelveSeries) {
  Registry registry;

  // The daemon-fleet instrument set, registered the way the daemons do it.
  core::AuditService audit_service;
  audit_service.register_metrics(registry);
  track::TrackService track_service;
  track_service.register_metrics(registry);
  registry.gauge("geoproof_engine_queue_depth").set(0);
  registry.histogram("geoproof_engine_audit_seconds").record_ns(1'000);
  registry.histogram("geoproof_vantage_rtt_seconds", {{"vantage", "sydney"}})
      .record_ns(2'000'000);
  registry.counter("geoproof_async_requests_total").inc();
  registry.counter("geoproof_async_deadline_misses_total");
  registry.gauge("geoproof_async_inflight_requests").set(1);

  MetricsServer server(registry, MetricsServer::Options{});
  const std::string response = http_get(server.port(), "/metrics");
  const std::set<std::string> names = series_names(response);
  EXPECT_GE(names.size(), 12u) << response;
  EXPECT_TRUE(names.count("geoproof_registry_audits_total")) << response;
  EXPECT_TRUE(names.count("geoproof_track_sweeps_total")) << response;
  EXPECT_TRUE(names.count("geoproof_vantage_rtt_seconds_count")) << response;

  const std::string statusz = http_get(server.port(), "/statusz");
  EXPECT_NE(statusz.find("\"geoproof_track_alarms_total\":0"),
            std::string::npos);
}

}  // namespace
}  // namespace geoproof::obs

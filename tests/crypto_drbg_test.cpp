#include "crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"

namespace geoproof::crypto {
namespace {

TEST(HmacDrbg, DeterministicFromSeed) {
  HmacDrbg a(bytes_of("seed material"));
  HmacDrbg b(bytes_of("seed material"));
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(HmacDrbg, DifferentSeedsDiffer) {
  HmacDrbg a(bytes_of("seed-a"));
  HmacDrbg b(bytes_of("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, SequentialOutputsDiffer) {
  HmacDrbg d(bytes_of("seed"));
  const Bytes x = d.generate(32);
  const Bytes y = d.generate(32);
  EXPECT_NE(x, y);
}

TEST(HmacDrbg, GenerateLengths) {
  HmacDrbg d(bytes_of("seed"));
  for (std::size_t len : {1u, 16u, 31u, 32u, 33u, 100u, 1000u}) {
    EXPECT_EQ(d.generate(len).size(), len);
  }
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(bytes_of("seed"));
  HmacDrbg b(bytes_of("seed"));
  (void)a.generate(16);
  (void)b.generate(16);
  b.reseed(bytes_of("extra entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, OutputLooksUniform) {
  // Crude sanity check: all 256 byte values appear in a long output.
  HmacDrbg d(bytes_of("uniformity"));
  const Bytes out = d.generate(16384);
  std::set<std::uint8_t> seen(out.begin(), out.end());
  EXPECT_EQ(seen.size(), 256u);
}

}  // namespace
}  // namespace geoproof::crypto

#include "ecc/gf256.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace geoproof::ecc {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(gf::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(gf::add(0xff, 0xff), 0);
}

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::mul(v, 1), v);
    EXPECT_EQ(gf::mul(1, v), v);
    EXPECT_EQ(gf::mul(v, 0), 0);
    EXPECT_EQ(gf::mul(0, v), 0);
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(gf::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                gf::mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, MulAssociative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 19) {
      for (int c = 1; c < 256; c += 23) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf::mul(gf::mul(x, y), z), gf::mul(x, gf::mul(y, z)));
      }
    }
  }
}

TEST(Gf256, Distributive) {
  for (int a = 0; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 29) {
      for (int c = 0; c < 256; c += 31) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf::mul(x, gf::add(y, z)),
                  gf::add(gf::mul(x, y), gf::mul(x, z)));
      }
    }
  }
}

TEST(Gf256, EveryNonzeroHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::mul(v, gf::inv(v)), 1) << "a = " << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW(gf::inv(0), InvalidArgument);
  EXPECT_THROW(gf::div(1, 0), InvalidArgument);
  EXPECT_THROW(gf::log(0), InvalidArgument);
}

TEST(Gf256, DivMatchesMulInv) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf::div(x, y), gf::mul(x, gf::inv(y)));
    }
  }
}

TEST(Gf256, ExpLogRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::exp(gf::log(v)), v);
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // alpha = 2 generates all 255 non-zero elements.
  std::uint8_t x = 1;
  for (int i = 1; i < 255; ++i) {
    x = gf::mul(x, 2);
    EXPECT_NE(x, 1) << "order divides " << i;
  }
  EXPECT_EQ(gf::mul(x, 2), 1);  // alpha^255 = 1
}

TEST(Gf256, ExpWrapsMod255) {
  EXPECT_EQ(gf::exp(0), gf::exp(255));
  EXPECT_EQ(gf::exp(1), gf::exp(256));
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (std::uint8_t base : {std::uint8_t{2}, std::uint8_t{3}, std::uint8_t{0x53}}) {
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 300; ++n) {
      EXPECT_EQ(gf::pow(base, n), acc) << "base " << int(base) << " n " << n;
      acc = gf::mul(acc, base);
    }
  }
  EXPECT_EQ(gf::pow(0, 0), 1);
  EXPECT_EQ(gf::pow(0, 5), 0);
}

TEST(Gf256, KnownProducts) {
  // Spot values under polynomial 0x11d: 2*128 = 0x1d (reduction kicks in).
  EXPECT_EQ(gf::mul(0x02, 0x80), 0x1d);
  EXPECT_EQ(gf::mul(0x80, 0x80), gf::pow(0x80, 2));
}

}  // namespace
}  // namespace geoproof::ecc

#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/errors.hpp"

namespace geoproof {
namespace {

TEST(Serialize, IntegersRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  w.i64(-42);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.i64(), -42);
  r.expect_done();
}

TEST(Serialize, DoubleRoundTrip) {
  ByteWriter w;
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());

  ByteReader r(w.data());
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_TRUE(std::isinf(r.f64()));
}

TEST(Serialize, BytesAndStrings) {
  ByteWriter w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes({});

  ByteReader r(w.data());
  EXPECT_EQ(r.bytes(), Bytes({1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  r.expect_done();
}

TEST(Serialize, RawHasNoPrefix) {
  ByteWriter w;
  w.raw(Bytes{9, 8, 7});
  EXPECT_EQ(w.size(), 3u);
  ByteReader r(w.data());
  EXPECT_EQ(r.raw(3), Bytes({9, 8, 7}));
}

TEST(Serialize, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  r.u16();
  EXPECT_THROW(r.u32(), SerializeError);
}

TEST(Serialize, TruncatedBytesThrows) {
  // Length prefix says 100 bytes but only 2 follow.
  ByteWriter w;
  w.u32(100);
  w.u16(0xffff);
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), SerializeError);
}

TEST(Serialize, TrailingBytesDetected) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), SerializeError);
}

TEST(Serialize, RemainingCountsDown) {
  ByteWriter w;
  w.u32(0);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 4u);
  r.u16();
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.done());
  r.u16();
  EXPECT_TRUE(r.done());
}

TEST(Serialize, EmptyReaderIsDone) {
  ByteReader r(BytesView{});
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), SerializeError);
}

}  // namespace
}  // namespace geoproof

#include "crypto/mac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/errors.hpp"

namespace geoproof::crypto {
namespace {

TEST(SegmentMac, TagSizeMatchesBits) {
  // The paper's example: 20-bit tags occupy 3 bytes (§V-A step 5).
  EXPECT_EQ(TagParams{.tag_bits = 20}.tag_size_bytes(), 3u);
  EXPECT_EQ(TagParams{.tag_bits = 8}.tag_size_bytes(), 1u);
  EXPECT_EQ(TagParams{.tag_bits = 128}.tag_size_bytes(), 16u);
}

TEST(SegmentMac, VerifyAcceptsGenuineTag) {
  const SegmentMac mac(bytes_of("tag key"), TagParams{.tag_bits = 20});
  const Bytes seg = bytes_of("segment contents");
  const Bytes tag = mac.tag(seg, 7, 1234);
  EXPECT_EQ(tag.size(), 3u);
  EXPECT_TRUE(mac.verify(seg, 7, 1234, tag));
}

TEST(SegmentMac, VerifyRejectsWrongSegment) {
  const SegmentMac mac(bytes_of("tag key"), TagParams{.tag_bits = 64});
  const Bytes tag = mac.tag(bytes_of("segment"), 7, 1234);
  EXPECT_FALSE(mac.verify(bytes_of("tampered"), 7, 1234, tag));
}

TEST(SegmentMac, VerifyRejectsWrongIndex) {
  // Binding the index stops the provider serving a different (valid)
  // segment in place of the challenged one.
  const SegmentMac mac(bytes_of("tag key"), TagParams{.tag_bits = 64});
  const Bytes seg = bytes_of("segment");
  const Bytes tag = mac.tag(seg, 7, 1234);
  EXPECT_FALSE(mac.verify(seg, 8, 1234, tag));
}

TEST(SegmentMac, VerifyRejectsWrongFileId) {
  const SegmentMac mac(bytes_of("tag key"), TagParams{.tag_bits = 64});
  const Bytes seg = bytes_of("segment");
  const Bytes tag = mac.tag(seg, 7, 1234);
  EXPECT_FALSE(mac.verify(seg, 7, 999, tag));
}

TEST(SegmentMac, VerifyRejectsWrongKey) {
  const SegmentMac a(bytes_of("key-a"), TagParams{.tag_bits = 64});
  const SegmentMac b(bytes_of("key-b"), TagParams{.tag_bits = 64});
  const Bytes seg = bytes_of("segment");
  EXPECT_FALSE(b.verify(seg, 7, 1234, a.tag(seg, 7, 1234)));
}

TEST(SegmentMac, PartialByteMasked) {
  // A 20-bit tag leaves the low 4 bits of the third byte unused; they must
  // be zero so serialisation is canonical.
  const SegmentMac mac(bytes_of("tag key"), TagParams{.tag_bits = 20});
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Bytes tag = mac.tag(bytes_of("seg"), i, 1);
    EXPECT_EQ(tag.back() & 0x0f, 0) << "index " << i;
  }
}

TEST(SegmentMac, CmacBackend) {
  const SegmentMac mac(Bytes(16, 0x5a),
                       TagParams{.tag_bits = 20, .alg = MacAlg::kAesCmac});
  const Bytes seg = bytes_of("segment");
  const Bytes tag = mac.tag(seg, 3, 77);
  EXPECT_EQ(tag.size(), 3u);
  EXPECT_TRUE(mac.verify(seg, 3, 77, tag));
  EXPECT_FALSE(mac.verify(seg, 4, 77, tag));
}

TEST(SegmentMac, BackendsDisagree) {
  // Different algorithms produce different tags: the parameters are part of
  // the scheme, not interchangeable at verification time.
  const Bytes key(16, 0x5a);
  const SegmentMac h(key, TagParams{.tag_bits = 64, .alg = MacAlg::kHmacSha256});
  const SegmentMac c(key, TagParams{.tag_bits = 64, .alg = MacAlg::kAesCmac});
  EXPECT_NE(h.tag(bytes_of("s"), 0, 0), c.tag(bytes_of("s"), 0, 0));
}

TEST(SegmentMac, CmacRejectsBadKeySize) {
  EXPECT_THROW(SegmentMac(Bytes(10, 0),
                          TagParams{.tag_bits = 20, .alg = MacAlg::kAesCmac}),
               InvalidArgument);
}

TEST(SegmentMac, TagBitsBounds) {
  EXPECT_THROW(SegmentMac(bytes_of("k"), TagParams{.tag_bits = 0}),
               InvalidArgument);
  EXPECT_THROW(SegmentMac(bytes_of("k"), TagParams{.tag_bits = 257}),
               InvalidArgument);
  EXPECT_THROW(SegmentMac(Bytes(16, 0),
                          TagParams{.tag_bits = 129, .alg = MacAlg::kAesCmac}),
               InvalidArgument);
  // 256 for HMAC and 128 for CMAC are legal maxima.
  EXPECT_NO_THROW(SegmentMac(bytes_of("k"), TagParams{.tag_bits = 256}));
  EXPECT_NO_THROW(SegmentMac(Bytes(16, 0),
                             TagParams{.tag_bits = 128, .alg = MacAlg::kAesCmac}));
}

TEST(SegmentMac, LengthEncodingUnambiguous) {
  // (segment="ab", index encodes to...) must differ from shifting bytes
  // between the segment and the trailing fields.
  const SegmentMac mac(bytes_of("key"), TagParams{.tag_bits = 64});
  const Bytes t1 = mac.tag(bytes_of("ab"), 0, 0);
  const Bytes t2 = mac.tag(bytes_of("a"), 0x6200000000000000ULL, 0);
  EXPECT_NE(t1, t2);
}

class SegmentMacBitsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SegmentMacBitsTest, RoundTripAtVariousTagWidths) {
  const unsigned bits = GetParam();
  const SegmentMac mac(bytes_of("parametrised key"), TagParams{.tag_bits = bits});
  const Bytes seg = bytes_of("the segment body");
  const Bytes tag = mac.tag(seg, 42, 9001);
  EXPECT_EQ(tag.size(), (bits + 7) / 8);
  EXPECT_TRUE(mac.verify(seg, 42, 9001, tag));
  if (bits >= 16) {
    // For very short tags a wrong index collides with probability 2^-bits;
    // only assert the mismatch where a collision would signal a real bug.
    EXPECT_FALSE(mac.verify(seg, 43, 9001, tag));
  }
}

INSTANTIATE_TEST_SUITE_P(TagWidths, SegmentMacBitsTest,
                         ::testing::Values(1u, 4u, 8u, 12u, 20u, 32u, 64u,
                                           128u, 160u, 256u));

}  // namespace
}  // namespace geoproof::crypto

// Fig. 6 walkthrough: a provider relays audits to remote data centres at
// increasing distances. Shows the RTT budget arithmetic live and where
// detection flips, for both a fast (IBM 36Z15) and an average (WD 2500JD)
// remote disk.
//
// Run: ./build/examples/relay_attack_demo
#include <cstdio>

#include "common/rng.hpp"
#include "core/deployment.hpp"

using namespace geoproof;
using namespace geoproof::core;

namespace {

DeploymentConfig base_config() {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.name = "bne-dc1";
  cfg.provider.location = {-27.4698, 153.0251};
  return cfg;
}

void sweep(const storage::DiskSpec& remote_disk) {
  std::printf("\n--- remote data centre disk: %s (avg look-up %.3f ms) ---\n",
              remote_disk.name.c_str(),
              storage::DiskModel(remote_disk).lookup_time(512).count());
  std::printf("%10s %12s %12s %10s\n", "dist km", "mean RTT", "max RTT",
              "verdict");
  for (const double dist : {25.0, 100.0, 250.0, 400.0, 730.0, 1500.0}) {
    DeploymentConfig cfg = base_config();
    SimulatedDeployment world(cfg);
    Rng rng(static_cast<std::uint64_t>(dist));
    const auto record = world.upload(rng.next_bytes(100000), 1);
    world.deploy_remote_relay(1, Kilometers{dist}, remote_disk);
    const AuditReport report = world.run_audit(record, 20);
    std::printf("%10.0f %12.2f %12.2f %10s\n", dist, report.mean_rtt.count(),
                report.max_rtt.count(),
                report.accepted ? "hidden" : "DETECTED");
  }
}

}  // namespace

int main() {
  std::printf("GeoProof relay-attack demo (paper Fig. 6)\n");
  std::printf("=========================================\n");

  {
    DeploymentConfig cfg = base_config();
    SimulatedDeployment world(cfg);
    Rng rng(1);
    const auto record = world.upload(rng.next_bytes(100000), 1);
    const AuditReport honest = world.run_audit(record, 20);
    std::printf("\nbaseline (honest local service): %s\n",
                honest.summary().c_str());
    std::printf("audit budget: %.2f ms per round\n",
                world.auditor().policy().max_round_trip().count());
  }

  const storage::DiskModel best(storage::ibm36z15());
  std::printf("\npaper's bound: with the fastest disk the relay can hide at "
              "most (4/9 c x %.3f ms)/2 = %.0f km away\n",
              best.lookup_time(512).count(),
              paper_relay_distance_bound(best.lookup_time(512)).value);

  sweep(storage::ibm36z15());
  sweep(storage::wd2500jd());

  std::printf("\ntakeaway: a fast remote disk buys the cheater distance, a "
              "slow one loses it - but past the budget radius every relay "
              "is caught, and the radius is a few hundred km, far tighter "
              "than IP-geolocation's >1000 km errors.\n");
  return 0;
}

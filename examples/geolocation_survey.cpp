// Survey: classic Internet geolocation vs GeoProof on honest and lying
// providers (the paper's §III motivation, made runnable).
//
// A provider claims its data centre is in Sydney. We locate it with
// GeoPing, Octant-lite and TBG multilateration, honest and adversarial,
// then show what a GeoProof audit concludes in the same situations.
//
// Run: ./build/examples/geolocation_survey
#include <cstdio>

#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "geoloc/schemes.hpp"

using namespace geoproof;
using namespace geoproof::geoloc;
using net::GeoPoint;
using net::haversine;

namespace {

void locate_all(const char* label, const RttProbe& probe,
                const GeoPoint& truth) {
  const auto landmarks = australian_landmarks();
  net::InternetModelParams p;
  p.jitter_stddev_ms = 0;
  const net::InternetModel model{p};
  const GeoPing geoping(landmarks);
  const TbgMultilateration tbg(landmarks, model);
  const OctantLite octant(landmarks, model);

  std::printf("\n%s\n", label);
  const GeoPoint ping_fix = geoping.locate(probe);
  std::printf("  GeoPing     -> error %6.0f km\n",
              haversine(ping_fix, truth).value);
  const auto region = octant.locate(probe);
  if (region.empty) {
    std::printf("  Octant-lite -> EMPTY region (constraints inconsistent)\n");
  } else {
    std::printf("  Octant-lite -> error %6.0f km (region %.0f km^2)\n",
                haversine(region.centroid, truth).value, region.area_km2);
  }
  const GeoPoint tbg_fix = tbg.locate(probe);
  std::printf("  TBG-lite    -> error %6.0f km\n",
              haversine(tbg_fix, truth).value);
}

}  // namespace

int main() {
  std::printf("Geolocation survey: measurement schemes vs GeoProof\n");
  std::printf("===================================================\n");

  const GeoPoint sydney = net::places::sydney();
  net::InternetModelParams p;
  p.jitter_stddev_ms = 0;
  const net::InternetModel model{p};

  // Case 1: the provider really is in Sydney.
  locate_all("case 1: honest provider, data in Sydney",
             honest_probe(model, sydney), sydney);

  // Case 2: same provider pads every probe by 50 ms (trivially possible -
  // it controls its own NIC).
  locate_all("case 2: same provider, +50 ms response padding",
             delay_padded_probe(honest_probe(model, sydney), Millis{50.0}),
             sydney);

  // Case 3: the data quietly lives in Perth while probes are answered by a
  // thin proxy in Sydney - measurement geolocation sees the proxy.
  locate_all("case 3: Sydney proxy, data actually in Perth "
             "(schemes locate the proxy, not the data)",
             honest_probe(model, sydney), net::places::perth());

  // GeoProof on the same three cases.
  std::printf("\nGeoProof on the same provider:\n");
  {
    core::DeploymentConfig cfg;
    cfg.por.ecc_data_blocks = 48;
    cfg.por.ecc_parity_blocks = 16;
    cfg.provider.location = sydney;
    core::SimulatedDeployment world(cfg);
    Rng rng(5);
    const auto record = world.upload(rng.next_bytes(80000), 1);
    std::printf("  case 1 (honest):          %s\n",
                world.run_audit(record, 15).summary().c_str());
    // Padding the timed phase only raises RTTs: rejection, never a fake
    // "nearer" result.
    std::printf("  case 2 (padding):         padding raises every Δt_j -> "
                "can only cause REJECT, never a closer fix\n");
    world.deploy_remote_relay(1, Kilometers{3300.0}, storage::ibm36z15());
    std::printf("  case 3 (proxy to Perth):  %s\n",
                world.run_audit(record, 15).summary().c_str());
  }

  std::printf("\nconclusion: measurement geolocation locates whoever answers "
              "probes and collapses under adversarial delay; GeoProof binds "
              "the *data* to the location through MAC tags + timing, and "
              "delay games only work against the cheater.\n");
  return 0;
}

// Locating a cloud provider with a vantage fleet: 28 simulated vantage
// auditors spread over ~1500 km measure a prover's delay with rapid bit
// exchanges, a calibrated delay model turns RTTs into distances, and the
// Byzantine-robust multilaterator solves for where the provider actually
// is — the GeoFINDR/BFT-PoLoc workload on top of GeoProof's engine.
//
// Three scenarios, all swept concurrently on a 4-shard parked engine:
//  1. an honest prover at its contracted site — localised to within the
//     fleet's latency-noise error bound;
//  2. the same fleet with three lying vantages — the liars are ejected and
//     the fix stays tight;
//  3. a relayed prover (front at the contracted site, data 1400 km away) —
//     every path gains the relay leg and the confidence radius blows up.
//
// Run: ./build/examples/locate_fleet
#include <cstdio>

#include "core/sharded_engine.hpp"
#include "locate/fleet.hpp"
#include "net/geo.hpp"

using namespace geoproof;
using namespace geoproof::locate;

namespace {

void print_sweep(const char* label, const VantageFleet& fleet,
                 const FleetSweep& sweep) {
  std::printf("%-18s est=(%7.2f, %7.2f)  err=%7.1f km  radius=%7.1f km  "
              "inliers=%2zu/%zu  rejected=%zu  converged=%s\n",
              label, sweep.estimate.position.lat_deg,
              sweep.estimate.position.lon_deg, sweep.error_vs_actual.value,
              sweep.estimate.radius_km.value, sweep.estimate.inliers.size(),
              sweep.observations.size(), sweep.estimate.outliers.size(),
              sweep.estimate.converged ? "yes" : "no");
  std::printf("%-18s virtual sweep time %.1f ms (slowest vantage), honest "
              "bound %.1f km\n",
              "", sweep.virtual_elapsed.count(),
              fleet.honest_error_bound().value);
}

}  // namespace

int main() {
  constexpr unsigned kVantages = 28;
  const net::GeoPoint contracted = net::places::brisbane();

  FleetOptions opts;
  opts.vantages = kVantages;
  opts.center = contracted;
  opts.spread = Kilometers{1500.0};
  opts.rounds = 16;
  opts.seed = 0x6e0f1ee7;

  std::printf("GeoProof locate: %u-vantage fleet around Brisbane, "
              "4-shard concurrent sweeps\n"
              "============================================================"
              "===========\n\n",
              kVantages);

  // The engine's parked workers run the fleet's measurement rounds; the
  // registry is empty because measurement rounds are not audits.
  core::AuditService service;
  core::ShardedAuditEngine::Options eopts;
  eopts.shards = 4;
  core::ShardedAuditEngine engine(service, eopts);

  // --- Scenario 1: honest prover at the contracted site. -----------------
  const VantageFleet fleet(opts);
  std::printf("delay model: rtt = %.1f ms + %.4f ms/km (r2 = %.3f)\n\n",
              fleet.delay_model().fit_stats().intercept_ms,
              fleet.delay_model().fit_stats().ms_per_km,
              fleet.delay_model().fit_stats().r2);

  ProverConfig honest;
  honest.name = "honest";
  honest.claimed = honest.actual = contracted;
  const FleetSweep honest_sweep = fleet.sweep(honest, engine);
  print_sweep("honest:", fleet, honest_sweep);

  // --- Scenario 2: three Byzantine vantages claim the prover is theirs. --
  FleetOptions byz_opts = opts;
  for (const std::size_t liar : {19u, 23u, 26u}) {
    // "18 ms away" = practically next door, from vantages 1000+ km out.
    byz_opts.lies.push_back(VantageLie{liar, Millis{18.0}});
  }
  const VantageFleet byz_fleet(byz_opts);
  const FleetSweep byz_sweep = byz_fleet.sweep(honest, engine);
  print_sweep("byzantine x3:", byz_fleet, byz_sweep);

  // --- Scenario 3: relayed prover, data actually 1400 km away. -----------
  ProverConfig relayed;
  relayed.name = "relayed";
  relayed.claimed = contracted;
  relayed.behaviour = ProverBehaviour::kRelayed;
  relayed.actual = net::destination(contracted, 225.0, Kilometers{1400.0});
  const FleetSweep relay_sweep = fleet.sweep(relayed, engine);
  print_sweep("relayed 1400km:", fleet, relay_sweep);

  std::printf("\nreading the table: the honest prover pins to a tight disk; "
              "the lying vantages\nare ejected by residual trimming without "
              "disturbing the fix; the relay's extra\nleg rides every "
              "vantage's path, so no tight disk exists and the radius says "
              "so.\n");

  // --- Smoke-test assertions (CTest runs this example). ------------------
  const double bound = fleet.honest_error_bound().value;
  if (!honest_sweep.estimate.converged ||
      honest_sweep.error_vs_actual.value > bound) {
    std::printf("FAIL: honest prover not localised within %.1f km\n", bound);
    return 1;
  }
  if (!honest_sweep.estimate.outliers.empty()) {
    std::printf("FAIL: honest fleet should have no outliers\n");
    return 1;
  }
  if (byz_sweep.rejected_liars() < 1) {
    std::printf("FAIL: no Byzantine vantage was rejected\n");
    return 1;
  }
  if (byz_sweep.rejected_liars() != 3 || byz_sweep.rejected_honest() != 0) {
    std::printf("FAIL: expected exactly the 3 liars rejected (got %zu liars, "
                "%zu honest)\n",
                byz_sweep.rejected_liars(), byz_sweep.rejected_honest());
    return 1;
  }
  if (byz_sweep.error_vs_actual.value > bound) {
    std::printf("FAIL: liars dragged the estimate beyond the bound\n");
    return 1;
  }
  if (relay_sweep.estimate.radius_km.value <= 5.0 * bound) {
    std::printf("FAIL: relayed prover's radius (%.1f km) not flagged\n",
                relay_sweep.estimate.radius_km.value);
    return 1;
  }
  return 0;
}

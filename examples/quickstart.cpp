// Quickstart: the complete GeoProof flow in one file.
//
//   1. A data owner encodes a file with the POR setup pipeline.
//   2. The encoded file is uploaded to a (simulated) Brisbane data centre.
//   3. The TPA runs a GeoProof audit through the tamper-proof verifier
//      device on the provider's LAN.
//   4. The TPA's four verification steps produce the verdict.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "core/deployment.hpp"

using namespace geoproof;
using namespace geoproof::core;

int main() {
  std::printf("GeoProof quickstart\n===================\n\n");

  // --- configure the world -------------------------------------------
  DeploymentConfig config;
  config.provider.name = "bne-dc1";
  config.provider.location = {-27.4698, 153.0251};  // Brisbane
  config.provider.disk = storage::wd2500jd();       // the paper's avg disk
  // Small ECC geometry keeps the demo snappy; swap for the paper's
  // (255, 223) by removing these two lines.
  config.por.ecc_data_blocks = 48;
  config.por.ecc_parity_blocks = 16;
  SimulatedDeployment world(config);

  std::printf("provider: %s at (%.4f, %.4f), disk %s\n",
              config.provider.name.c_str(), config.provider.location.lat_deg,
              config.provider.location.lon_deg,
              config.provider.disk.name.c_str());
  std::printf("policy:   max round trip %.2f ms (calibrated to the disk)\n\n",
              world.auditor().policy().max_round_trip().count());

  // --- owner: encode + upload ----------------------------------------
  Rng rng(2024);
  const Bytes file = rng.next_bytes(1 << 20);  // 1 MiB of owner data
  const auto record = world.upload(file, /*file_id=*/1);
  std::printf("uploaded file 1: %zu bytes -> %llu segments of %zu bytes "
              "(expansion from ECC+MAC)\n\n",
              file.size(), static_cast<unsigned long long>(record.n_segments),
              config.por.segment_bytes());

  // --- TPA: audit ------------------------------------------------------
  // The TPA is programmed against the polymorphic audit API: every flavour
  // (MAC, sentinel, dynamic) exposes the same make_request/verify pair
  // through core::AuditScheme, which is also what AuditService schedules.
  AuditScheme& tpa = world.scheme();
  const std::uint32_t k = 20;
  std::printf("running GeoProof audit (scheme '%s') with k = %u timed "
              "challenges...\n",
              tpa.name().c_str(), k);
  const AuditRequest request = tpa.make_request(record, k);
  const SignedTranscript transcript = world.verifier().run_audit(request);
  const AuditReport report = tpa.verify(record, transcript);
  std::printf("  %s\n", report.summary().c_str());
  std::printf("  per-round RTT: mean %.3f ms, max %.3f ms (LAN + disk "
              "look-up)\n\n",
              report.mean_rtt.count(), report.max_rtt.count());

  // --- what an attack looks like --------------------------------------
  std::printf("now the provider secretly moves the data ~730 km away "
              "(Sydney) and relays...\n");
  world.deploy_remote_relay(1, Kilometers{730.0}, storage::ibm36z15());
  const AuditReport attacked = world.run_audit(record, k);
  std::printf("  %s\n", attacked.summary().c_str());
  std::printf("\nverdict: the timed challenge-response phase exposes the "
              "relocation; tags stay valid because the data is intact - "
              "it is simply in the wrong place.\n");
  return 0;
}

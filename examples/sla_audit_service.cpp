// Continuous SLA compliance auditing across three data centres — and two
// GeoProof flavours — through ONE AuditService registry.
//
// A data owner stores replicas with three providers (different cities,
// different disk classes) audited with the paper's MAC flavour, plus a
// mutable working set at the first site audited with the dynamic-POR
// flavour; all four registrations are scheduled and reported by a single
// scheme-agnostic service. Midway, one provider silently relocates its
// replica and another starts corrupting data; the per-registration
// compliance report catches both, and the dynamic registration keeps
// passing because its provider stayed honest.
//
// Run: ./build/examples/sla_audit_service
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/audit_service.hpp"
#include "core/deployment.hpp"
#include "core/dynamic_geoproof.hpp"

using namespace geoproof;
using namespace geoproof::core;

namespace {

struct Site {
  std::string name;
  net::GeoPoint location;
  storage::DiskSpec disk;
  std::unique_ptr<SimulatedDeployment> world;
  std::uint64_t registration = 0;
};

std::unique_ptr<SimulatedDeployment> make_world(const std::string& name,
                                                net::GeoPoint loc,
                                                const storage::DiskSpec& disk) {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.name = name;
  cfg.provider.location = loc;
  cfg.provider.disk = disk;
  return std::make_unique<SimulatedDeployment>(cfg);
}

}  // namespace

int main() {
  std::printf("GeoProof SLA audit service: one week, hourly audits,\n");
  std::printf("four registrations (3x MAC + 1x dynamic), one service\n");
  std::printf("====================================================\n\n");

  Rng rng(7);
  const Bytes replica = rng.next_bytes(200000);

  std::vector<Site> sites;
  sites.push_back({"bne-dc1", net::places::brisbane(), storage::wd2500jd(),
                   nullptr, 0});
  sites.push_back({"syd-dc2", net::places::sydney(),
                   storage::find_disk("IBM 73LZX").value(), nullptr, 0});
  sites.push_back({"mel-dc3", net::places::melbourne(),
                   storage::find_disk("Hitachi DK23DA").value(), nullptr, 0});

  // ONE service drives every (scheme, file, provider) registration.
  AuditService service;

  std::uint64_t next_file_id = 1;
  for (Site& site : sites) {
    site.world = make_world(site.name, site.location, site.disk);
    const FileRecord record = site.world->upload(replica, next_file_id++);
    site.registration =
        service.add(site.world->scheme(), site.world->verifier(), record, 15,
                    "mac/" + site.name);
  }

  // The dynamic-POR registration: a mutable working set at bne-dc1,
  // audited with Merkle freshness proofs, sharing site 1's clock.
  SimulatedDeployment& bne = *sites[0].world;
  por::PorParams dyn_params = bne.config().por;
  const Bytes dyn_master = bytes_of("sla-dynamic-master");
  const por::PorEncoder dyn_encoder(dyn_params);
  por::DynamicPorProvider dyn_provider(
      dyn_encoder.encode(rng.next_bytes(120000), next_file_id, dyn_master));
  DynamicProviderService dyn_wire(dyn_provider, bne.clock(),
                                  storage::DiskModel(sites[0].disk));
  net::SimRequestChannel dyn_channel(
      bne.clock(), net::lan_latency(net::LanModel{}, Kilometers{0.1}, 21),
      dyn_wire.handler());
  net::SimAuditTimer dyn_timer(bne.clock());
  VerifierDevice::Config dyn_vcfg;
  dyn_vcfg.position = sites[0].location;
  VerifierDevice dyn_verifier(dyn_vcfg, dyn_channel, dyn_timer);
  AuditorConfig dyn_cfg;
  dyn_cfg.master_key = dyn_master;
  dyn_cfg.verifier_pk = dyn_verifier.public_key();
  dyn_cfg.expected_position = sites[0].location;
  dyn_cfg.policy = LatencyPolicy::for_disk(sites[0].disk);
  DynamicAuditScheme dyn_scheme(dyn_cfg, dyn_params);
  const FileRecord dyn_record = dyn_scheme.register_file(
      next_file_id, dyn_provider.root(), dyn_provider.n_segments());
  const std::uint64_t dyn_registration =
      service.add(dyn_scheme, dyn_verifier, dyn_record, 15,
                  "dynamic/bne-dc1");

  const Nanos hour =
      std::chrono::duration_cast<Nanos>(std::chrono::hours(1));

  // Days 1-3: everyone behaves. Each site's audits run on its own clock;
  // the service registry spans them all.
  for (const Site& site : sites) {
    service.schedule(site.world->queue(), site.world->clock(),
                     site.registration, site.world->clock().now() + hour,
                     hour, 72);
  }
  service.schedule(bne.queue(), bne.clock(), dyn_registration,
                   bne.clock().now() + hour, hour, 72);
  for (Site& site : sites) site.world->queue().run_all();

  // Day 4: syd-dc2 relocates its replica 1400 km away; mel-dc3's disks
  // start corrupting segments.
  sites[1].world->deploy_remote_relay(2, Kilometers{1400.0},
                                      storage::ibm36z15());
  {
    Rng corrupt_rng(99);
    sites[2].world->provider().corrupt_segments(3, 0.15, corrupt_rng);
  }

  // Days 4-7.
  for (const Site& site : sites) {
    service.schedule(site.world->queue(), site.world->clock(),
                     site.registration, site.world->clock().now() + hour,
                     hour, 96);
  }
  service.schedule(bne.queue(), bne.clock(), dyn_registration,
                   bne.clock().now() + hour, hour, 96);
  for (Site& site : sites) site.world->queue().run_all();

  std::printf("%-16s %-14s %8s %8s %10s %12s %18s\n", "registration",
              "disk", "audits", "passed", "rate", "SLA(99%)",
              "consec. failures");
  const auto print_row = [&](std::uint64_t id, const std::string& disk) {
    const auto& reg = service.registration(id);
    const auto c = service.compliance(id);
    std::printf("%-16s %-14s %8llu %8llu %9.1f%% %12s %18llu\n",
                reg.label.c_str(), disk.c_str(),
                static_cast<unsigned long long>(c.total),
                static_cast<unsigned long long>(c.passed),
                100.0 * c.rate(), c.meets(0.99) ? "MET" : "BREACHED",
                static_cast<unsigned long long>(
                    service.consecutive_failures(id)));
  };
  for (const Site& site : sites) {
    print_row(site.registration, site.disk.name);
  }
  print_row(dyn_registration, sites[0].disk.name);

  const auto aggregate = service.compliance();
  std::printf("\nfleet aggregate: %llu/%llu audits passed (%.1f%%) across "
              "%zu registrations\n",
              static_cast<unsigned long long>(aggregate.passed),
              static_cast<unsigned long long>(aggregate.total),
              100.0 * aggregate.rate(), service.size());

  std::printf("\nfailure signatures (last audit of each registration):\n");
  for (const std::uint64_t id : service.file_ids()) {
    std::printf("  %-16s %s\n", service.registration(id).label.c_str(),
                service.history(id).back().report.summary().c_str());
  }
  std::printf("\nreading the signatures: timing-only failures mean the data "
              "moved; tag failures mean the data rotted. GeoProof separates "
              "the two — and one scheme-agnostic service now watches every "
              "flavour.\n");
  return 0;
}

// Continuous SLA compliance auditing across three data centres.
//
// A data owner stores replicas with three providers (different cities,
// different disk classes) and runs hourly GeoProof audits for a simulated
// week. Midway, one provider silently relocates its replica and another
// starts corrupting data; the compliance report catches both.
//
// Run: ./build/examples/sla_audit_service
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/audit_service.hpp"
#include "core/deployment.hpp"

using namespace geoproof;
using namespace geoproof::core;

namespace {

struct Site {
  std::string name;
  net::GeoPoint location;
  storage::DiskSpec disk;
  std::unique_ptr<SimulatedDeployment> world;
  Auditor::FileRecord record;
  std::unique_ptr<AuditService> service;
};

std::unique_ptr<SimulatedDeployment> make_world(const std::string& name,
                                                net::GeoPoint loc,
                                                const storage::DiskSpec& disk) {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.name = name;
  cfg.provider.location = loc;
  cfg.provider.disk = disk;
  return std::make_unique<SimulatedDeployment>(cfg);
}

}  // namespace

int main() {
  std::printf("GeoProof SLA audit service: one week, hourly audits\n");
  std::printf("===================================================\n\n");

  Rng rng(7);
  const Bytes replica = rng.next_bytes(200000);

  std::vector<Site> sites;
  sites.push_back({"bne-dc1", net::places::brisbane(), storage::wd2500jd(),
                   nullptr, {}, nullptr});
  sites.push_back({"syd-dc2", net::places::sydney(),
                   storage::find_disk("IBM 73LZX").value(), nullptr, {},
                   nullptr});
  sites.push_back({"mel-dc3", net::places::melbourne(),
                   storage::find_disk("Hitachi DK23DA").value(), nullptr, {},
                   nullptr});

  for (Site& site : sites) {
    site.world = make_world(site.name, site.location, site.disk);
    site.record = site.world->upload(replica, 1);
    site.service = std::make_unique<AuditService>(
        site.world->auditor(), site.world->verifier(), site.record, 15);
  }

  const Nanos hour =
      std::chrono::duration_cast<Nanos>(std::chrono::hours(1));

  // Days 1-3: everyone behaves.
  for (Site& site : sites) {
    site.service->schedule(site.world->queue(), site.world->clock(),
                           site.world->clock().now() + hour, hour, 72);
    site.world->queue().run_all();
  }

  // Day 4: syd-dc2 relocates its replica 1400 km away; mel-dc3's disks
  // start corrupting segments.
  sites[1].world->deploy_remote_relay(1, Kilometers{1400.0},
                                      storage::ibm36z15());
  {
    Rng corrupt_rng(99);
    sites[2].world->provider().corrupt_segments(1, 0.15, corrupt_rng);
  }

  // Days 4-7.
  for (Site& site : sites) {
    site.service->schedule(site.world->queue(), site.world->clock(),
                           site.world->clock().now() + hour, hour, 96);
    site.world->queue().run_all();
  }

  std::printf("%-10s %-14s %8s %8s %10s %12s %18s\n", "site", "disk",
              "audits", "passed", "rate", "SLA(99%)", "consec. failures");
  for (const Site& site : sites) {
    const auto c = site.service->compliance();
    std::printf("%-10s %-14s %8u %8u %9.1f%% %12s %18u\n", site.name.c_str(),
                site.disk.name.c_str(), c.total, c.passed, 100.0 * c.rate(),
                c.meets(0.99) ? "MET" : "BREACHED",
                site.service->consecutive_failures());
  }

  std::printf("\nfailure signatures (last audit of each site):\n");
  for (const Site& site : sites) {
    std::printf("  %-10s %s\n", site.name.c_str(),
                site.service->history().back().report.summary().c_str());
  }
  std::printf("\nreading the signatures: timing-only failures mean the data "
              "moved; tag failures mean the data rotted. GeoProof separates "
              "the two.\n");
  return 0;
}

// Multicloud compliance sweeps through the sharded audit engine: twelve
// provider data centres, three GeoProof flavours (MAC, sentinel, dynamic),
// ONE scheme instance per flavour shared by every registration of that
// flavour, audited concurrently by a work-stealing 4-shard engine.
//
// This is the GeoFINDR-style scenario (PAPERS.md): a data owner spreads
// replicas across many clouds and sweeps them all, repeatedly, to catch
// the providers that moved or rotted the data. Midway, one provider
// starts relaying to a remote data centre 1400 km away (timing failures),
// one corrupts its stored blocks (sentinel-value failures) and one rots a
// Merkle-audited working set (proof failures); per-registration
// compliance separates all three.
//
// Run: ./build/examples/multicloud_sweep
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/dynamic_geoproof.hpp"
#include "core/provider.hpp"
#include "core/sharded_engine.hpp"
#include "net/async.hpp"
#include "net/channel.hpp"
#include "net/latency.hpp"

using namespace geoproof;
using namespace geoproof::core;

namespace {

constexpr unsigned kProviders = 12;  // 4 per flavour
constexpr std::uint32_t kMacChallenge = 8;
constexpr std::uint32_t kSentinelChallenge = 4;  // sentinels are consumable
constexpr unsigned kSentinelSupply = 2000;       // per-file sentinels

enum class Flavour { kMac, kSentinel, kDynamic };

Flavour flavour_of(std::uint64_t id) {
  switch ((id - 1) % 3) {
    case 0: return Flavour::kMac;
    case 1: return Flavour::kSentinel;
    default: return Flavour::kDynamic;
  }
}

const char* flavour_name(Flavour f) {
  switch (f) {
    case Flavour::kMac: return "mac";
    case Flavour::kSentinel: return "sentinel";
    default: return "dynamic";
  }
}

/// One provider data centre: its own virtual clock, storage, LAN channel
/// and on-site verifier device. The contracted site is Brisbane for every
/// provider; what differs is the disk class and (later) the behaviour.
struct Site {
  SimClock clock;
  net::SimAuditTimer timer{clock};
  std::unique_ptr<CloudProvider> provider;
  std::unique_ptr<por::DynamicPorProvider> dyn_provider;
  std::unique_ptr<DynamicProviderService> dyn_service;
  std::unique_ptr<net::SimRequestChannel> channel;
  std::unique_ptr<VerifierDevice> verifier;
  std::unique_ptr<CloudProvider> relay_target;  // keeps a deployed relay alive
  std::shared_ptr<net::SimRequestChannel> relay_channel;
  std::unique_ptr<por::EncodedFile> encoded;  // retained for relay mirroring
  FileRecord record;
  std::string disk_name;
};

const storage::DiskSpec& disk_for(std::uint64_t id) {
  static const storage::DiskSpec disks[3] = {
      storage::wd2500jd(), storage::find_disk("IBM 73LZX").value(),
      storage::find_disk("Hitachi DK23DA").value()};
  return disks[id % 3];
}

/// Every provider must pass while honest, whatever its disk: take the
/// elementwise-worst per-disk calibration as the fleet policy.
LatencyPolicy fleet_policy() {
  LatencyPolicy policy{Millis{0}, Millis{0}, Millis{0}};
  for (std::uint64_t id = 0; id < 3; ++id) {
    const LatencyPolicy p = LatencyPolicy::for_disk(disk_for(id));
    policy.max_network_rtt = std::max(policy.max_network_rtt, p.max_network_rtt);
    policy.max_lookup = std::max(policy.max_lookup, p.max_lookup);
    policy.slack = std::max(policy.slack, p.slack);
  }
  return policy;
}

}  // namespace

int main() {
  std::printf("GeoProof multicloud sweep: %u providers, 3 flavours, one\n"
              "scheme per flavour, 4 work-stealing shards\n"
              "========================================================\n\n",
              kProviders);

  const net::GeoPoint contracted = net::places::brisbane();
  const Bytes master = bytes_of("multicloud-sweep-master");
  Rng rng(2026);
  por::PorParams por_params;
  por_params.ecc_data_blocks = 48;
  por_params.ecc_parity_blocks = 16;
  const por::SentinelParams sentinel_params{.block_size = 16,
                                            .n_sentinels = kSentinelSupply};

  std::vector<std::unique_ptr<Site>> sites;
  for (std::uint64_t id = 1; id <= kProviders; ++id) {
    auto site = std::make_unique<Site>();
    Site& s = *site;
    const Bytes replica = rng.next_bytes(30000);
    s.disk_name = disk_for(id).name;
    CloudProvider::Config pcfg;
    pcfg.name = "dc-" + std::to_string(id);
    pcfg.location = contracted;
    pcfg.disk = disk_for(id);
    pcfg.seed = 0x9e0 + id;
    const auto lan = [&s, id](net::RequestHandler handler) {
      return std::make_unique<net::SimRequestChannel>(
          s.clock, net::lan_latency(net::LanModel{}, Kilometers{0.1}, id),
          std::move(handler));
    };
    switch (flavour_of(id)) {
      case Flavour::kMac: {
        s.provider = std::make_unique<CloudProvider>(pcfg, s.clock);
        s.encoded = std::make_unique<por::EncodedFile>(
            por::PorEncoder(por_params).encode(replica, id, master));
        s.provider->store(*s.encoded);
        s.record = FileRecord{id, s.encoded->n_segments, 0};
        s.channel = lan(s.provider->handler());
        break;
      }
      case Flavour::kSentinel: {
        s.provider = std::make_unique<CloudProvider>(pcfg, s.clock);
        const por::SentinelEncoded encoded =
            por::SentinelPor(sentinel_params).encode(replica, id, master);
        s.provider->store_blocks(id, encoded.blocks,
                                 sentinel_params.block_size);
        s.record = SentinelAuditScheme::file_record(encoded);
        s.channel = lan(s.provider->handler());
        break;
      }
      case Flavour::kDynamic: {
        s.dyn_provider = std::make_unique<por::DynamicPorProvider>(
            por::PorEncoder(por_params).encode(replica, id, master));
        s.dyn_service = std::make_unique<DynamicProviderService>(
            *s.dyn_provider, s.clock, storage::DiskModel(disk_for(id)));
        s.channel = lan(s.dyn_service->handler());
        break;
      }
    }
    VerifierDevice::Config vcfg;  // shared burned-in signer seed => one pk
    vcfg.position = contracted;
    s.verifier = std::make_unique<VerifierDevice>(vcfg, *s.channel, s.timer);
    sites.push_back(std::move(site));
  }

  // One TPA scheme per flavour — the sharded engine drives all twelve
  // registrations through these three instances concurrently, which is
  // exactly the shared-state path the AuditScheme thread-safety contract
  // covers.
  AuditorConfig base;
  base.master_key = master;
  base.verifier_pk = sites.front()->verifier->public_key();
  base.expected_position = contracted;
  base.policy = fleet_policy();
  MacAuditScheme mac(base, por_params);
  SentinelAuditScheme sentinel(base, sentinel_params);
  DynamicAuditScheme dynamic(base, por_params);

  AuditService service;
  for (std::uint64_t id = 1; id <= kProviders; ++id) {
    Site& s = *sites[id - 1];
    const std::string label =
        std::string(flavour_name(flavour_of(id))) + "/dc-" +
        std::to_string(id);
    switch (flavour_of(id)) {
      case Flavour::kMac:
        service.add(mac, *s.verifier, s.record, kMacChallenge, label);
        break;
      case Flavour::kSentinel:
        service.add(sentinel, *s.verifier, s.record, kSentinelChallenge,
                    label);
        break;
      case Flavour::kDynamic:
        s.record = dynamic.register_file(id, s.dyn_provider->root(),
                                         s.dyn_provider->n_segments());
        service.add(dynamic, *s.verifier, s.record, kMacChallenge, label);
        break;
    }
  }

  ShardedAuditEngine::Options opts;
  opts.shards = 4;
  opts.seed = 0x6e0f1;
  ShardedAuditEngine engine(service, opts);

  std::printf("shard plan (file ids per shard):\n");
  const auto plan = engine.shard_plan();
  for (std::size_t sh = 0; sh < plan.size(); ++sh) {
    std::printf("  shard %zu:", sh);
    for (const std::uint64_t id : plan[sh]) std::printf(" %llu",
        static_cast<unsigned long long>(id));
    std::printf("\n");
  }

  // Phase 1: everyone honest — a short continuous run for throughput.
  const auto honest = engine.run_for(std::chrono::milliseconds(20));
  std::printf("\nhonest phase: %llu audits in %llu sweeps, %.0f audits/sec "
              "(%llu stolen by idle shards)\n",
              static_cast<unsigned long long>(honest.delta.audits),
              static_cast<unsigned long long>(honest.delta.sweeps),
              honest.audits_per_second,
              static_cast<unsigned long long>(honest.delta.steals));

  // Phase 2: three providers go bad, one per flavour / failure mode.
  //  - dc-1 (mac): relays to a data centre 1400 km away  -> timing
  //  - dc-2 (sentinel): corrupts its stored blocks       -> sentinel tags
  //  - dc-3 (dynamic): rots the Merkle-audited replica   -> proofs
  {
    Site& s = *sites[0];
    CloudProvider::Config rcfg;
    rcfg.name = "dc-1-remote";
    rcfg.disk = storage::ibm36z15();
    auto remote = std::make_unique<CloudProvider>(rcfg, s.clock);
    remote->store(*s.encoded);  // a faithful mirror — only the distance lies
    s.relay_channel = std::make_shared<net::SimRequestChannel>(
        s.clock,
        net::internet_latency(net::InternetModel(net::InternetModelParams{}),
                              Kilometers{1400.0}, 0x1e7),
        remote->handler());
    s.provider->set_relay(s.relay_channel);
    s.relay_target = std::move(remote);
  }
  {
    Rng corrupt_rng(99);
    sites[1]->provider->corrupt_segments(2, 0.5, corrupt_rng);
  }
  {
    Site& s = *sites[2];
    for (std::uint64_t i = 0; i < s.record.n_segments; i += 2) {
      s.dyn_provider->tamper(i, 0, 0xff);
    }
  }

  constexpr unsigned kBadSweeps = 4;
  unsigned bad_passed = 0;
  for (unsigned i = 0; i < kBadSweeps; ++i) bad_passed += engine.sweep_once();
  std::printf("after the breach: %u/%u audits passing per sweep\n\n",
              bad_passed / kBadSweeps, kProviders);

  std::printf("%-16s %-14s %8s %8s %9s %10s %s\n", "registration", "disk",
              "audits", "passed", "rate", "SLA(99%)", "last failure");
  for (const std::uint64_t id : service.file_ids()) {
    const auto& reg = service.registration(id);
    const auto c = service.compliance(id);
    const auto& last = service.history(id).back().report;
    std::printf("%-16s %-14s %8llu %8llu %8.1f%% %10s %s\n",
                reg.label.c_str(), sites[id - 1]->disk_name.c_str(),
                static_cast<unsigned long long>(c.total),
                static_cast<unsigned long long>(c.passed),
                100.0 * c.rate(), c.meets(0.99) ? "MET" : "BREACHED",
                last.accepted ? "-" : last.summary().c_str());
  }

  std::printf("\nengine: %s\n", engine.summary().c_str());
  const auto aggregate = engine.compliance_all();
  std::printf("fleet aggregate: %llu/%llu engine-driven audits passed "
              "(%.1f%%)\n",
              static_cast<unsigned long long>(aggregate.passed),
              static_cast<unsigned long long>(aggregate.total),
              100.0 * aggregate.rate());
  std::printf("\nreading the table: timing failures = the data moved; tag "
              "failures = the data rotted (sentinel values or Merkle "
              "proofs). One engine, three flavours, every provider watched "
              "concurrently.\n");

  // Phase 3: the async transport. The same twelve-provider fleet, rebuilt
  // on two region worlds (one per shard), audited through SimAsyncChannels
  // by a 2-shard engine whose shards each hold six distance-bounding
  // sessions in flight on one event queue. Each provider's disk time is
  // charged to its own private service clock, so concurrent look-ups
  // overlap instead of stacking — run the identical fleet serialised
  // (max_in_flight = 1) and overlapped (max_in_flight = 6) and compare
  // the virtual time each region spent.
  std::printf("\nasync transport: 12 providers, 2 shards, overlapping "
              "sessions\n"
              "========================================================\n");
  struct AsyncRegion {
    SimClock clock;
    EventQueue queue{clock};
    net::SimAsyncDriver driver{queue};
  };
  struct AsyncSite {
    SimClock disk_clock;  // private: service time, overlappable
    net::SimAuditTimer timer;
    std::unique_ptr<CloudProvider> provider;
    std::unique_ptr<por::EncodedFile> encoded;
    std::unique_ptr<net::SimAsyncChannel> channel;
    std::unique_ptr<VerifierDevice> verifier;
    FileRecord record;
    explicit AsyncSite(SimClock& region_clock) : timer(region_clock) {}
  };
  struct AsyncFleet {
    std::vector<std::unique_ptr<AsyncRegion>> regions;
    std::vector<std::unique_ptr<AsyncSite>> sites;
    std::unique_ptr<MacAuditScheme> scheme;
    AuditService service;
  };
  const auto region_of = [](std::uint64_t id) {
    return static_cast<std::size_t>((id - 1) % 2);
  };
  const auto build_async_fleet = [&](AsyncFleet& fleet) {
    Rng fleet_rng(4052);
    por::PorParams por_params_async;
    por_params_async.ecc_data_blocks = 48;
    por_params_async.ecc_parity_blocks = 16;
    for (std::size_t r = 0; r < 2; ++r) {
      fleet.regions.push_back(std::make_unique<AsyncRegion>());
    }
    for (std::uint64_t id = 1; id <= kProviders; ++id) {
      AsyncRegion& region = *fleet.regions[region_of(id)];
      auto site = std::make_unique<AsyncSite>(region.clock);
      CloudProvider::Config pcfg;
      pcfg.name = "adc-" + std::to_string(id);
      pcfg.location = contracted;
      pcfg.disk = disk_for(id);
      pcfg.seed = 0xa5e + id;
      // The provider's disk charges its *own* clock; the channel folds
      // that service time into each response's arrival on the region
      // clock, so sessions overlap honestly.
      site->provider = std::make_unique<CloudProvider>(pcfg, site->disk_clock);
      site->encoded = std::make_unique<por::EncodedFile>(
          por::PorEncoder(por_params_async)
              .encode(fleet_rng.next_bytes(30000), id, master));
      site->provider->store(*site->encoded);
      site->record = FileRecord{id, site->encoded->n_segments, 0};
      site->channel = std::make_unique<net::SimAsyncChannel>(
          region.clock, region.queue,
          net::lan_latency(net::LanModel{}, Kilometers{0.1}, id),
          site->provider->handler(), &site->disk_clock);
      VerifierDevice::Config vcfg;
      vcfg.position = contracted;
      site->verifier = std::make_unique<VerifierDevice>(
          vcfg, *site->channel, site->timer, &region.driver);
      fleet.sites.push_back(std::move(site));
    }
    AuditorConfig acfg;
    acfg.master_key = master;
    acfg.verifier_pk = fleet.sites.front()->verifier->public_key();
    acfg.expected_position = contracted;
    acfg.policy = fleet_policy();
    fleet.scheme = std::make_unique<MacAuditScheme>(acfg, por_params_async);
    for (auto& site : fleet.sites) {
      fleet.service.add(*fleet.scheme, *site->verifier, site->record,
                        kMacChallenge,
                        "mac/adc-" + std::to_string(site->record.file_id));
    }
  };
  const auto run_async_sweep = [&](AsyncFleet& fleet,
                                   std::size_t max_in_flight) {
    ShardedAuditEngine::Options aopts;
    aopts.shards = 2;
    aopts.partitioner = [&region_of](std::uint64_t id, std::size_t) {
      return region_of(id);
    };
    aopts.clock_source = [&fleet](std::size_t shard) {
      SimClock* clock = &fleet.regions[shard]->clock;
      return [clock] { return clock->now(); };
    };
    aopts.driver_source = [&fleet](std::size_t shard) {
      return &fleet.regions[shard]->driver;
    };
    aopts.max_in_flight = max_in_flight;
    ShardedAuditEngine engine(fleet.service, aopts);
    const unsigned passed = engine.sweep_once();
    double worst_region_ms = 0.0;
    for (const auto& region : fleet.regions) {
      worst_region_ms = std::max(
          worst_region_ms, to_millis(region->clock.now()).count());
    }
    return std::pair<unsigned, double>{passed, worst_region_ms};
  };

  AsyncFleet serial_fleet, overlap_fleet;
  build_async_fleet(serial_fleet);
  build_async_fleet(overlap_fleet);
  const auto [serial_passed, serial_ms] = run_async_sweep(serial_fleet, 1);
  const auto [overlap_passed, overlap_ms] = run_async_sweep(overlap_fleet, 6);
  std::printf("  serialised (1 in-flight/shard):  %2u/%u passed, "
              "%7.2f ms virtual per region\n",
              serial_passed, kProviders, serial_ms);
  std::printf("  overlapped (6 in-flight/shard):  %2u/%u passed, "
              "%7.2f ms virtual per region\n",
              overlap_passed, kProviders, overlap_ms);
  std::printf("  overlap speedup: %.1fx\n", serial_ms / overlap_ms);

  // Smoke-test assertions: every audit passes on both transports, and
  // overlapping six sessions per shard must beat serialising them by at
  // least 2x in virtual time — the whole point of the event-loop layer.
  if (serial_passed != kProviders || overlap_passed != kProviders) {
    std::printf("FAIL: async sweep rejected an honest provider\n");
    return 1;
  }
  if (overlap_ms * 2.0 > serial_ms) {
    std::printf("FAIL: in-flight sessions did not overlap\n");
    return 1;
  }
  return 0;
}

// GeoProof over real TCP: the same protocol engine that runs on the
// simulator, pointed at a genuine socket with wall-clock timing.
//
// The "provider" is a loopback TCP server with a configurable artificial
// look-up delay standing in for disk + distance; three scenarios show the
// audit verdict tracking the injected latency.
//
// Run: ./build/examples/tcp_geoproof
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/rng.hpp"
#include "core/auditor.hpp"
#include "core/verifier.hpp"
#include "net/tcp.hpp"
#include "por/encoder.hpp"

using namespace geoproof;
using namespace geoproof::core;

int main() {
  std::printf("GeoProof over TCP loopback\n==========================\n\n");

  // Owner-side encode.
  por::PorParams params;
  params.ecc_data_blocks = 48;
  params.ecc_parity_blocks = 16;
  const Bytes master = bytes_of("tcp-demo-master-key");
  Rng rng(1);
  const por::PorEncoder encoder(params);
  const por::EncodedFile file = encoder.encode(rng.next_bytes(100000), 1, master);
  std::printf("encoded file: %llu segments x %zu bytes\n\n",
              static_cast<unsigned long long>(file.n_segments),
              params.segment_bytes());

  // Provider: TCP server with injectable look-up delay.
  std::atomic<int> lookup_delay_ms{0};
  net::TcpServer server([&](BytesView request) {
    const SegmentRequest req = SegmentRequest::deserialize(request);
    const int delay = lookup_delay_ms.load();
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    return file.segments[static_cast<std::size_t>(req.index)];
  });
  std::printf("provider listening on 127.0.0.1:%u\n", server.port());

  // Verifier device + TPA.
  net::TcpRequestChannel channel("127.0.0.1", server.port());
  net::SteadyAuditTimer timer;
  VerifierDevice::Config vcfg;
  vcfg.position = {-27.4698, 153.0251};
  VerifierDevice verifier(vcfg, channel, timer);

  Auditor::Config acfg;
  acfg.por = params;
  acfg.master_key = master;
  acfg.verifier_pk = verifier.public_key();
  acfg.expected_position = vcfg.position;
  // Budget: generous loopback allowance + 15 ms look-up + slack.
  acfg.policy = LatencyPolicy{Millis{10.0}, Millis{15.0}, Millis{5.0}};
  Auditor auditor(acfg);
  const Auditor::FileRecord record{file.file_id, file.n_segments};
  std::printf("budget: %.1f ms per round (wall clock)\n\n",
              acfg.policy.max_round_trip().count());

  const auto audit = [&](const char* label) {
    const AuditRequest request = auditor.make_request(record, 10);
    const SignedTranscript transcript = verifier.run_audit(request);
    const AuditReport report = auditor.verify(record, transcript);
    std::printf("%-34s %s\n", label, report.summary().c_str());
  };

  audit("local provider (no delay):");
  lookup_delay_ms = 8;
  audit("busy local disk (+8 ms):");
  lookup_delay_ms = 60;
  audit("relayed to remote DC (+60 ms):");

  std::printf("\nthe protocol engine is transport-agnostic: the identical "
              "verifier/auditor code produced these verdicts over a real "
              "socket with std::chrono timing.\n");
  return 0;
}

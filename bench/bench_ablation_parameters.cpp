// Ablation A2 — the design parameters DESIGN.md calls out:
//   tag width ℓ_τ: forgery probability vs storage overhead;
//   segment size v: audit bandwidth vs segment count;
//   RAM cache: how a provider's cache reshapes the RTT distribution and
//   why the timing policy must be calibrated against the *disk*, not the
//   observed best case.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "por/analysis.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

void print_tag_width() {
  std::printf("\n=== Ablation: tag width ℓ_τ (v = 5 blocks, ℓ_B = 128 b) ===\n");
  std::printf("%10s %16s %18s %22s\n", "tag bits", "segment bytes",
              "extra overhead", "log10 P[forge 20-rd]");
  for (const unsigned bits : {4u, 8u, 12u, 20u, 32u, 64u, 128u}) {
    por::PorParams p;
    p.tag.tag_bits = bits;
    const double overhead =
        static_cast<double>(p.tag.tag_size_bytes()) /
        (p.blocks_per_segment * p.block_size);
    std::printf("%10u %16zu %17.2f%% %22.1f\n", bits, p.segment_bytes(),
                100.0 * overhead,
                por::log10_tag_forgery_probability(bits, 20));
  }
  std::printf("The paper's 20-bit choice: 3.75%% overhead (byte-aligned), "
              "forgery 2^-400 per 20-round audit — tags never bottleneck "
              "soundness; ECC dominates storage cost.\n");
}

void print_segment_size() {
  std::printf("\n=== Ablation: blocks per segment v ===\n");
  std::printf("%6s %14s %16s %20s\n", "v", "segments/MiB", "audit bytes(k=20)",
              "expansion");
  Rng rng(3);
  const Bytes file = rng.next_bytes(1 << 20);
  for (const std::size_t v : {1u, 2u, 5u, 10u, 20u}) {
    por::PorParams p;
    p.ecc_data_blocks = 48;
    p.ecc_parity_blocks = 16;
    p.blocks_per_segment = v;
    const por::PorEncoder enc(p);
    const auto ef = enc.encode(file, 1, bytes_of("k"));
    std::printf("%6zu %14llu %16zu %19.4f\n", v,
                static_cast<unsigned long long>(ef.n_segments),
                20 * p.segment_bytes(), ef.expansion());
  }
  std::printf("Bigger segments cut per-audit round count for the same "
              "coverage but raise the bytes a single round moves; the "
              "paper's v = 5 keeps a round inside one network packet.\n");
}

void print_cache_ablation() {
  std::printf("\n=== Ablation: provider RAM cache vs the timing policy ===\n");
  std::printf("%22s %12s %12s %12s\n", "configuration", "mean RTT",
              "max RTT", "verdict");
  struct Case {
    const char* name;
    std::size_t cache;
    bool prewarm;
  };
  for (const Case c : {Case{"cold disk", 0, false},
                       Case{"cache, cold", 4096, false},
                       Case{"cache, prewarmed", 4096, true}}) {
    DeploymentConfig cfg;
    cfg.por.ecc_data_blocks = 48;
    cfg.por.ecc_parity_blocks = 16;
    cfg.provider.location = {-27.47, 153.02};
    cfg.provider.cache_segments = c.cache;
    cfg.verifier.signer_height = 4;
    SimulatedDeployment world(cfg);
    Rng rng(4);
    const auto record = world.upload(rng.next_bytes(60000), 1);
    if (c.prewarm) {
      std::vector<std::uint64_t> all(record.n_segments);
      for (std::uint64_t i = 0; i < record.n_segments; ++i) {
        all[static_cast<std::size_t>(i)] = i;
      }
      world.provider().prewarm(1, all);
    }
    const AuditReport report = world.run_audit(record, 20);
    std::printf("%22s %12.3f %12.3f %12s\n", c.name,
                report.mean_rtt.count(), report.max_rtt.count(),
                report.accepted ? "accepted" : "REJECTED");
  }
  std::printf("A cache can only make the provider *faster* — it can never "
              "help a relay beat light. The policy therefore keys its "
              "budget to the slowest legitimate path (the disk), and fast "
              "answers are simply fine. The converse implication matters "
              "for auditors: a provider answering at cache speed proves "
              "nothing about where the *cold* bulk of the data lives — "
              "which is exactly why challenges are unpredictable and "
              "sampled across the whole file.\n\n");
}

void BM_EncodeAtTagWidth(benchmark::State& state) {
  por::PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  p.tag.tag_bits = static_cast<unsigned>(state.range(0));
  const por::PorEncoder enc(p);
  Rng rng(5);
  const Bytes file = rng.next_bytes(256 << 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(file, 1, bytes_of("k")));
  }
  state.SetBytesProcessed(state.iterations() * (256 << 10));
}
BENCHMARK(BM_EncodeAtTagWidth)->Arg(20)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_tag_width();
  print_segment_size();
  print_cache_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

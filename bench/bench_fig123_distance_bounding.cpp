// Experiment F1-F3 — Figs. 1-3: the distance-bounding protocols.
//
// Regenerates (a) honest-run RTT behaviour for Brands-Chaum, Hancke-Kuhn
// and Reid et al., and (b) the attack-acceptance curves versus the round
// count n: blind guessing 2^-n, Hancke-Kuhn pre-ask and distance fraud
// (3/4)^n, pure relay 0, and the terrorist-fraud contrast between HK
// (vulnerable at zero cost) and Reid (collusion leaks the long-term key).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "distbound/attacks.hpp"
#include "distbound/brands_chaum.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::distbound;

void print_honest_runs() {
  std::printf("\n=== Figs. 1-3: honest distance-bounding sessions ===\n");
  std::printf("%-14s %8s %10s %12s %10s\n", "Protocol", "rounds", "accepted",
              "max RTT ms", "bits bad");
  const ExchangeParams params{.rounds = 32, .max_rtt = Millis{2.0}};
  const Millis one_way{0.3};
  {
    SimClock clock;
    Rng rng(1);
    const auto res =
        run_hancke_kuhn(clock, one_way, params, bytes_of("secret"), rng);
    std::printf("%-14s %8u %10s %12.3f %10u\n", "Hancke-Kuhn", params.rounds,
                res.exchange.accepted ? "yes" : "NO",
                res.exchange.max_rtt.count(), res.exchange.bit_errors);
  }
  {
    SimClock clock;
    Rng rng(2);
    const auto res = run_reid(clock, one_way, params, bytes_of("secret"), "V",
                              "P", rng);
    std::printf("%-14s %8u %10s %12.3f %10u\n", "Reid et al.", params.rounds,
                res.exchange.accepted ? "yes" : "NO",
                res.exchange.max_rtt.count(), res.exchange.bit_errors);
  }
  {
    SimClock clock;
    Rng rng(3);
    const auto res =
        run_brands_chaum(clock, one_way, params, bytes_of("key"), rng);
    std::printf("%-14s %8u %10s %12.3f %10u\n", "Brands-Chaum", params.rounds,
                res.accepted ? "yes" : "NO", res.exchange.max_rtt.count(),
                res.exchange.bit_errors);
  }
}

void print_attack_curves() {
  std::printf("\n--- Attack acceptance vs rounds n (4000 trials each) ---\n");
  std::printf("%4s | %10s %10s | %10s %10s | %10s %10s\n", "n", "guess",
              "2^-n", "pre-ask", "(3/4)^n", "dist-fraud", "(3/4)^n");
  const Millis one_way{0.3};
  for (const unsigned n : {1u, 2u, 4u, 8u, 12u, 16u}) {
    const ExchangeParams params{.rounds = n, .max_rtt = Millis{2.0}};
    const auto guess = measure_hk_guessing(4000, params, one_way, 100 + n);
    const auto preask = measure_hk_preask(4000, params, one_way, 200 + n);
    const auto fraud =
        measure_hk_distance_fraud(4000, params, one_way, 300 + n);
    std::printf("%4u | %10.4f %10.4f | %10.4f %10.4f | %10.4f %10.4f\n", n,
                guess.acceptance_rate(), std::pow(0.5, n),
                preask.acceptance_rate(), std::pow(0.75, n),
                fraud.acceptance_rate(), std::pow(0.75, n));
  }

  std::printf("\n--- Pure relay (mafia fraud without pre-ask) ---\n");
  const ExchangeParams p16{.rounds = 16, .max_rtt = Millis{2.0}};
  for (const double leg_ms : {0.1, 0.5, 0.69, 0.71, 1.0, 5.0}) {
    const auto stats =
        measure_relay(400, p16, one_way, Millis{leg_ms}, 4000);
    std::printf("  relay leg %5.2f ms (adds %5.2f ms RTT): accepted %.2f%% "
                "(slack is 1.4 ms)\n",
                leg_ms, 2 * leg_ms, 100.0 * stats.acceptance_rate());
  }

  std::printf("\n--- Terrorist fraud (n = 32) ---\n");
  const ExchangeParams p32{.rounds = 32, .max_rtt = Millis{2.0}};
  const auto hk = simulate_terrorist_hancke_kuhn(p32, one_way, 5000);
  const auto reid = simulate_terrorist_reid(p32, one_way, 5001);
  std::printf("  Hancke-Kuhn: accomplice accepted=%s, long-term secret "
              "leaked=%s  (vulnerable)\n",
              hk.accepted ? "yes" : "no",
              hk.long_term_secret_leaked ? "yes" : "no");
  std::printf("  Reid et al.: accomplice accepted=%s, long-term secret "
              "leaked=%s  (collusion costs the key)\n\n",
              reid.accepted ? "yes" : "no",
              reid.long_term_secret_leaked ? "yes" : "no");
}

void BM_HanckeKuhnSession(benchmark::State& state) {
  const ExchangeParams params{.rounds = static_cast<unsigned>(state.range(0)),
                              .max_rtt = Millis{2.0}};
  Rng rng(9);
  for (auto _ : state) {
    SimClock clock;
    benchmark::DoNotOptimize(
        run_hancke_kuhn(clock, Millis{0.3}, params, bytes_of("s"), rng));
  }
}
BENCHMARK(BM_HanckeKuhnSession)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_honest_runs();
  print_attack_curves();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment F4-F5 — Figs. 4-5: the GeoProof architecture and protocol.
//
// Runs full audits on the simulated deployment and reports the virtual-time
// behaviour the protocol is built around: per-round RTT decomposition
// (LAN vs disk look-up), audit duration versus challenge size k, and the
// effect of the provider's disk class. Also wall-clock microbenchmarks of
// the protocol engine (challenge sampling, signing, verification).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "core/deployment.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

DeploymentConfig bench_config() {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.location = {-27.47, 153.02};
  cfg.verifier.signer_height = 12;  // BM_FullAudit iterates thousands of times
  return cfg;
}

void print_protocol_sweeps() {
  std::printf("\n=== Fig. 5: GeoProof audit behaviour (virtual time) ===\n");

  std::printf("\n--- Audit cost vs challenge size k (WD 2500JD) ---\n");
  std::printf("%6s %14s %12s %12s %12s\n", "k", "audit ms", "mean RTT",
              "max RTT", "verdict");
  {
    SimulatedDeployment world(bench_config());
    Rng rng(1);
    const auto record = world.upload(rng.next_bytes(200000), 1);
    for (const std::uint32_t k : {5u, 10u, 20u, 50u, 100u}) {
      const Nanos before = world.clock().now();
      const AuditReport report = world.run_audit(record, k);
      const double audit_ms =
          to_millis(world.clock().now() - before).count();
      std::printf("%6u %14.2f %12.3f %12.3f %12s\n", k, audit_ms,
                  report.mean_rtt.count(), report.max_rtt.count(),
                  report.accepted ? "accepted" : "REJECTED");
    }
  }

  std::printf("\n--- Mean round RTT by provider disk (k = 20) ---\n");
  std::printf("%-16s %12s %12s %14s %10s\n", "Disk", "mean RTT", "max RTT",
              "budget ms", "verdict");
  for (const auto& disk : storage::disk_catalog()) {
    DeploymentConfig cfg = bench_config();
    cfg.provider.disk = disk;
    SimulatedDeployment world(cfg);
    Rng rng(2);
    const auto record = world.upload(rng.next_bytes(100000), 1);
    const AuditReport report = world.run_audit(record, 20);
    std::printf("%-16s %12.3f %12.3f %14.2f %10s\n", disk.name.c_str(),
                report.mean_rtt.count(), report.max_rtt.count(),
                world.auditor().policy().max_round_trip().count(),
                report.accepted ? "accepted" : "REJECTED");
  }

  std::printf("\n--- RTT decomposition (deterministic latencies, k = 20) ---\n");
  {
    DeploymentConfig cfg = bench_config();
    cfg.provider.sample_disk_latency = false;
    cfg.lan_jitter_seed = 0;
    SimulatedDeployment world(cfg);
    Rng rng(3);
    const auto record = world.upload(rng.next_bytes(100000), 1);
    const AuditReport report = world.run_audit(record, 20);
    const net::LanModel lan(cfg.lan);
    const double lan_rtt =
        lan.rtt(cfg.verifier_distance, 16, cfg.por.segment_bytes()).count();
    const storage::DiskModel disk(cfg.provider.disk);
    const std::size_t read_bytes =
        ((cfg.por.segment_bytes() + 511) / 512) * 512;
    std::printf("  measured round RTT: %.4f ms = LAN %.4f ms + look-up "
                "%.4f ms\n",
                report.mean_rtt.count(), lan_rtt,
                disk.lookup_time(read_bytes).count());
    std::printf("  (paper budget: Δt_VP <= 3 ms, Δt_L <= 13 ms, Δt_max ~ "
                "16 ms)\n\n");
  }
}

// The device's one-time keys are finite; rebuild the world when exhausted
// so the benchmark can iterate indefinitely.
struct BenchWorld {
  std::unique_ptr<SimulatedDeployment> world;
  Auditor::FileRecord record;

  BenchWorld() { rebuild(); }
  void rebuild() {
    world = std::make_unique<SimulatedDeployment>(bench_config());
    Rng rng(4);
    record = world->upload(rng.next_bytes(100000), 1);
  }
  void ensure_keys(benchmark::State& state) {
    if (world->verifier().audits_remaining() == 0) {
      state.PauseTiming();
      rebuild();
      state.ResumeTiming();
    }
  }
};

void BM_FullAudit(benchmark::State& state) {
  BenchWorld bw;
  const auto k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    bw.ensure_keys(state);
    benchmark::DoNotOptimize(bw.world->run_audit(bw.record, k));
  }
}
BENCHMARK(BM_FullAudit)->Arg(10)->Arg(50);

void BM_TranscriptVerify(benchmark::State& state) {
  BenchWorld bw;
  for (auto _ : state) {
    state.PauseTiming();
    if (bw.world->verifier().audits_remaining() == 0) bw.rebuild();
    const AuditRequest request = bw.world->auditor().make_request(bw.record, 20);
    const SignedTranscript transcript = bw.world->verifier().run_audit(request);
    state.ResumeTiming();
    benchmark::DoNotOptimize(bw.world->auditor().verify(bw.record, transcript));
  }
}
BENCHMARK(BM_TranscriptVerify);

}  // namespace

int main(int argc, char** argv) {
  print_protocol_sweeps();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

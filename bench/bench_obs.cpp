// Observability overhead: the instruments' hot paths and the scrape's cold
// path. Reported per row:
//   BM_CounterInc          - one striped relaxed fetch_add (the audit-path
//                            instrument; the acceptance budget is <= 20 ns)
//   BM_CounterIncContended - 8 threads on ONE counter (stripes must keep
//                            this near the uncontended cost)
//   BM_HistogramRecord     - one record_ns (bucket + sum fetch_adds)
//   BM_GaugeSet            - one relaxed store
//   BM_RegistrySnapshot    - snapshot() of a populated histogram
//   BM_ScrapeRender/N      - render_prometheus over N series (the
//                            /metrics body at fleet scale, up to 1e4)
//   BM_SpanRecord          - one Span copy into the ring
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using geoproof::obs::Counter;
using geoproof::obs::Gauge;
using geoproof::obs::Histogram;
using geoproof::obs::Registry;
using geoproof::obs::Span;
using geoproof::obs::SpanRecorder;

void BM_CounterInc(benchmark::State& state) {
  static Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncContended(benchmark::State& state) {
  static Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncContended)->Threads(8);

void BM_HistogramRecord(benchmark::State& state) {
  static Histogram histogram;
  std::uint64_t ns = 1;
  for (auto _ : state) {
    histogram.record_ns(ns);
    ns = (ns * 2862933555777941757ULL + 3037000493ULL) >> 24;  // vary buckets
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_GaugeSet(benchmark::State& state) {
  static Gauge gauge;
  std::int64_t v = 0;
  for (auto _ : state) {
    gauge.set(++v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_RegistrySnapshot(benchmark::State& state) {
  Histogram histogram;
  for (std::uint64_t ns = 1; ns < 1'000'000; ns *= 3) {
    histogram.record_ns(ns);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrySnapshot);

void BM_ScrapeRender(benchmark::State& state) {
  Registry registry;
  const auto series = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < series; ++i) {
    registry
        .counter("geoproof_audits_total", {{"file", std::to_string(i)}})
        .inc(i);
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string body = registry.render_prometheus();
    bytes = body.size();
    benchmark::DoNotOptimize(body);
  }
  state.counters["body_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(series));
}
BENCHMARK(BM_ScrapeRender)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SpanRecord(benchmark::State& state) {
  SpanRecorder recorder;
  Span span;
  span.kind = "audit";
  span.total = geoproof::Nanos{1000};
  for (auto _ : state) {
    recorder.record(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecord);

}  // namespace

BENCHMARK_MAIN();

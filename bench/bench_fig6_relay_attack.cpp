// Experiment F6 — Fig. 6: the relay attack.
//
// The provider relays every challenge to a remote data centre running the
// fastest disk in the catalogue (IBM 36Z15, Δt_L = 5.406 ms). Sweeping the
// remote distance shows the detection flip. The paper's headline number:
// with Internet speed 4/9 c the remote can hide at most ~360 km away; the
// budget arithmetic of the enforced policy gives the operational bound.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "core/deployment.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

DeploymentConfig bench_config() {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.location = {-27.47, 153.02};
  cfg.verifier.signer_height = 3;  // few audits per world, many worlds
  return cfg;
}

void print_relay_sweep() {
  std::printf("\n=== Fig. 6: relay attack vs remote distance ===\n");

  const storage::DiskModel best(storage::ibm36z15());
  const Millis remote_lookup = best.lookup_time(512);
  const LatencyPolicy policy =
      LatencyPolicy::for_disk(bench_config().provider.disk);
  std::printf("\nBounds:\n");
  std::printf("  paper formula  (4/9c * Δt_L_remote / 2):      %7.1f km\n",
              paper_relay_distance_bound(remote_lookup).value);
  const net::InternetModel inet{net::InternetModelParams{}};
  // Operational bound under this policy and Internet model: solve
  // base + 2d/(eff*speed) + lookup + lan <= budget for d.
  const double budget = policy.max_round_trip().count();
  const double lan_ms = 0.07;
  const double slack_ms =
      budget - inet.params().base_rtt.count() - remote_lookup.count() - lan_ms;
  const double op_bound =
      slack_ms > 0 ? slack_ms / 2.0 * inet.params().propagation_speed.value *
                         inet.params().route_efficiency
                   : 0.0;
  std::printf("  enforced budget bound (base RTT %.0f ms, budget %.2f ms): "
              "%7.1f km\n\n",
              inet.params().base_rtt.count(), budget, op_bound);

  std::printf("%10s %14s %12s %12s %14s\n", "dist km", "detect rate",
              "mean RTT", "max RTT", "expected");
  Rng seed_rng(11);
  for (const double dist : {10.0, 50.0, 150.0, 250.0, 300.0, 350.0, 400.0,
                            500.0, 730.0, 1500.0, 3600.0}) {
    int detected = 0;
    double mean_rtt = 0, max_rtt = 0;
    const int trials = 25;
    for (int t = 0; t < trials; ++t) {
      DeploymentConfig cfg = bench_config();
      cfg.provider.seed = seed_rng.next_u64();
      cfg.lan_jitter_seed = seed_rng.next_u64();
      cfg.internet_jitter_seed = seed_rng.next_u64();
      SimulatedDeployment world(cfg);
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      const auto record = world.upload(rng.next_bytes(60000), 1);
      world.deploy_remote_relay(1, Kilometers{dist}, storage::ibm36z15());
      const AuditReport report = world.run_audit(record, 20);
      detected += !report.accepted;
      mean_rtt += report.mean_rtt.count();
      max_rtt = std::max(max_rtt, report.max_rtt.count());
    }
    std::printf("%10.0f %13.0f%% %12.2f %12.2f %14s\n", dist,
                100.0 * detected / trials, mean_rtt / trials, max_rtt,
                dist > op_bound ? "detect" : "may hide");
  }
  std::printf("\nShape: detection rises with distance and saturates at 100%% "
              "well inside the paper's 360 km-scale bound. Because the "
              "auditor takes the max over 20 rounds of *sampled* look-ups "
              "and jitter, even in-bound relays are often caught; the "
              "deterministic bounds above mark where hiding becomes "
              "impossible rather than merely unlikely.\n\n");
}

void BM_RelayAuditRound(benchmark::State& state) {
  DeploymentConfig cfg = bench_config();
  cfg.verifier.signer_height = 14;  // enough one-time keys to iterate freely
  SimulatedDeployment world(cfg);
  Rng rng(5);
  const auto record = world.upload(rng.next_bytes(60000), 1);
  world.deploy_remote_relay(1, Kilometers{400.0}, storage::ibm36z15());
  for (auto _ : state) {
    if (world.verifier().audits_remaining() == 0) {
      state.SkipWithError("device keys exhausted");
      break;
    }
    benchmark::DoNotOptimize(world.run_audit(record, 10));
  }
}
BENCHMARK(BM_RelayAuditRound);

}  // namespace

int main(int argc, char** argv) {
  print_relay_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

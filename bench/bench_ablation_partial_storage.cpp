// Ablation A1 — the partial-storage (hybrid) cheat.
//
// Between the paper's two extremes (all data local vs. all data relayed,
// Fig. 6) lies the economically interesting cheat: keep a fraction f of the
// segments locally and offload the rest. A challenged segment is served
// fast with probability f, so one k-round audit accepts with probability
// ~f^k — the timing analogue of the POR detection bound. This bench sweeps
// f and k and compares the measured acceptance with the closed form, then
// shows how audit *frequency* compounds the detection rate.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "core/deployment.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

DeploymentConfig bench_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.por.ecc_data_blocks = 48;
  cfg.por.ecc_parity_blocks = 16;
  cfg.provider.location = {-27.47, 153.02};
  cfg.verifier.signer_height = 1;
  cfg.provider.seed = seed;
  cfg.lan_jitter_seed = seed ^ 0x11;
  cfg.verifier.challenge_seed = seed ^ 0x22;
  return cfg;
}

double measure_acceptance(double keep_fraction, unsigned k, int trials,
                          Rng& seeds) {
  int accepted = 0;
  for (int t = 0; t < trials; ++t) {
    SimulatedDeployment world(bench_config(seeds.next_u64()));
    Rng rng(static_cast<std::uint64_t>(t) + 7);
    const auto record = world.upload(rng.next_bytes(30000), 1);
    world.deploy_partial_offload(1, keep_fraction, Kilometers{1500.0},
                                 storage::ibm36z15(), seeds.next_u64());
    accepted += world.run_audit(record, k).accepted;
  }
  return static_cast<double>(accepted) / trials;
}

void print_sweep() {
  std::printf("\n=== Ablation: partial-storage attack (keep fraction f, "
              "challenge size k) ===\n");
  std::printf("\nAcceptance per audit, measured vs f^k (60 trials/cell):\n");
  std::printf("%8s", "f \\ k");
  const unsigned ks[] = {1, 2, 5, 10};
  for (const unsigned k : ks) std::printf("  %8u  (f^%-2u)", k, k);
  std::printf("\n");
  Rng seeds(0xab1a);
  for (const double f : {0.99, 0.95, 0.9, 0.75, 0.5}) {
    std::printf("%8.2f", f);
    for (const unsigned k : ks) {
      const double measured = measure_acceptance(f, k, 60, seeds);
      std::printf("  %8.2f (%5.2f)", measured, std::pow(f, k));
    }
    std::printf("\n");
  }

  std::printf("\nCompounding over repeated audits (f = 0.95, k = 10, "
              "per-audit acceptance ~ 0.60):\n");
  const double per_audit = std::pow(0.95, 10);
  std::printf("%10s %24s\n", "audits", "P[never caught]");
  for (const unsigned n : {1u, 7u, 30u, 90u, 365u}) {
    std::printf("%10u %24.2e\n", n, std::pow(per_audit, n));
  }
  std::printf("\nConclusion: even a provider offloading only 5%% of the "
              "data survives a year of daily 10-round audits with "
              "probability ~1e-81 — the timing check inherits POR's "
              "sampling amplification.\n\n");
}

void BM_PartialOffloadAudit(benchmark::State& state) {
  DeploymentConfig cfg = bench_config(1);
  cfg.verifier.signer_height = 14;
  SimulatedDeployment world(cfg);
  Rng rng(2);
  const auto record = world.upload(rng.next_bytes(30000), 1);
  world.deploy_partial_offload(1, 0.5, Kilometers{1500.0},
                               storage::ibm36z15());
  for (auto _ : state) {
    if (world.verifier().audits_remaining() == 0) {
      state.SkipWithError("device keys exhausted");
      break;
    }
    benchmark::DoNotOptimize(world.run_audit(record, 10));
  }
}
BENCHMARK(BM_PartialOffloadAudit);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Sharded audit engine throughput: audits/sec for one full-registry sweep
// at 1/2/4/8 shards, against the same 16-registration fleet. The 1-shard
// row is the apples-to-apples baseline for AuditService::run_all (see
// bench_audit_service); the scaling across rows is what the ROADMAP's
// sharded-engine item promised.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/provider.hpp"
#include "core/sharded_engine.hpp"
#include "net/channel.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

constexpr net::GeoPoint kSite{-27.47, 153.02};
constexpr unsigned kRegistrations = 16;
constexpr std::uint32_t kChallenge = 8;

por::PorParams bench_params() {
  por::PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  return p;
}

/// One registration's private world (clock, provider, LAN, verifier); the
/// fleet shares a single MacAuditScheme, so shards contend on the real
/// TPA-side shared state (nonce ledger).
struct ShardWorld {
  SimClock clock;
  net::SimAuditTimer timer{clock};
  std::unique_ptr<CloudProvider> provider;
  std::unique_ptr<net::SimRequestChannel> channel;
  std::unique_ptr<VerifierDevice> verifier;
  FileRecord record;
};

struct ShardedFleet {
  const Bytes master = bytes_of("bench-sharded-engine-master");
  por::PorParams params = bench_params();
  std::vector<std::unique_ptr<ShardWorld>> worlds;
  std::unique_ptr<MacAuditScheme> scheme;
  std::unique_ptr<AuditService> service;
  std::unique_ptr<ShardedAuditEngine> engine;
  std::size_t shards = 1;
  bool parked_workers = true;

  explicit ShardedFleet(std::size_t n_shards, bool parked = true)
      : shards(n_shards), parked_workers(parked) {
    rebuild();
  }

  void rebuild() {
    Rng rng(29);
    const por::PorEncoder encoder(params);
    worlds.clear();
    service = std::make_unique<AuditService>();
    scheme.reset();
    for (std::uint64_t id = 1; id <= kRegistrations; ++id) {
      auto world = std::make_unique<ShardWorld>();
      ShardWorld& w = *world;
      CloudProvider::Config pcfg;
      pcfg.name = "dc-" + std::to_string(id);
      pcfg.location = kSite;
      pcfg.seed = 0x9e0 + id;
      w.provider = std::make_unique<CloudProvider>(pcfg, w.clock);
      const por::EncodedFile encoded =
          encoder.encode(rng.next_bytes(20000), id, master);
      w.provider->store(encoded);
      w.record = FileRecord{id, encoded.n_segments, 0};
      w.channel = std::make_unique<net::SimRequestChannel>(
          w.clock, net::lan_latency(net::LanModel{}, Kilometers{0.1}, id),
          w.provider->handler());
      VerifierDevice::Config vcfg;  // shared signer seed => one fleet pk
      vcfg.position = kSite;
      vcfg.signer_height = 10;  // 1024 audits per device between rebuilds
      w.verifier = std::make_unique<VerifierDevice>(vcfg, *w.channel, w.timer);
      worlds.push_back(std::move(world));
    }
    AuditorConfig cfg;
    cfg.master_key = master;
    cfg.verifier_pk = worlds.front()->verifier->public_key();
    cfg.expected_position = kSite;
    cfg.policy = LatencyPolicy::for_disk(storage::wd2500jd());
    scheme = std::make_unique<MacAuditScheme>(cfg, params);
    for (auto& world : worlds) {
      service->add(*scheme, *world->verifier, world->record, kChallenge);
    }
    ShardedAuditEngine::Options opts;
    opts.shards = shards;
    opts.parked_workers = parked_workers;
    engine = std::make_unique<ShardedAuditEngine>(*service, opts);
  }

  void ensure_keys(benchmark::State& state) {
    for (const auto& world : worlds) {
      if (world->verifier->audits_remaining() < 2) {
        state.PauseTiming();
        rebuild();
        state.ResumeTiming();
        return;
      }
    }
  }
};

/// One sweep of the whole registry (16 heterogeneous provider worlds)
/// fanned across the configured shard count, on the parked worker pool
/// (default since the pool landed).
void BM_ShardedSweep(benchmark::State& state) {
  ShardedFleet fleet(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fleet.ensure_keys(state);
    benchmark::DoNotOptimize(fleet.engine->sweep_once());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRegistrations);
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_ShardedSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// The historical respawn-per-sweep mode on the identical fleet — diff a
/// row against BM_ShardedSweep at the same shard count for the parked-pool
/// win (shards-1 jthread spawns + joins saved per sweep).
void BM_ShardedSweepRespawn(benchmark::State& state) {
  ShardedFleet fleet(static_cast<std::size_t>(state.range(0)),
                     /*parked=*/false);
  for (auto _ : state) {
    fleet.ensure_keys(state);
    benchmark::DoNotOptimize(fleet.engine->sweep_once());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRegistrations);
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_ShardedSweepRespawn)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

// Experiment E4 — §III-B: why timing-based geolocation is not enough.
//
// Quantifies the paper's two criticisms of the reviewed schemes:
//  accuracy — location error for honest targets across a city grid
//  (worst cases reach the paper's ">1000 km" scale for sparse landmarks);
//  security — a delay-padding target displaces every estimate, while the
//  same padding can only make a GeoProof prover look *farther* away
//  (the one-sided asymmetry that motivates the GeoProof design).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "geoloc/schemes.hpp"
#include "net/latency.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::geoloc;
using net::GeoPoint;
using net::haversine;

net::InternetModel model_with_jitter(double stddev) {
  net::InternetModelParams p;
  p.jitter_stddev_ms = stddev;
  return net::InternetModel(p);
}

std::vector<GeoPoint> target_grid() {
  // Honest targets scattered over the Australian mainland + Tasmania.
  std::vector<GeoPoint> targets;
  for (double lat = -42.0; lat <= -18.0; lat += 6.0) {
    for (double lon = 117.0; lon <= 152.0; lon += 7.0) {
      targets.push_back({lat, lon});
    }
  }
  return targets;
}

struct ErrStats {
  double mean = 0, p50 = 0, max = 0;
};

ErrStats stats_of(std::vector<double> errs) {
  std::sort(errs.begin(), errs.end());
  ErrStats s;
  for (const double e : errs) s.mean += e;
  s.mean /= static_cast<double>(errs.size());
  s.p50 = errs[errs.size() / 2];
  s.max = errs.back();
  return s;
}

void print_accuracy() {
  std::printf("\n=== E4: geolocation baselines (§III-B) ===\n");
  std::printf("\n--- Honest-target accuracy over a continental grid "
              "(8 landmarks, jittered delays) ---\n");
  const auto landmarks = australian_landmarks();
  const auto model = model_with_jitter(3.0);
  const GeoPing geoping(landmarks);
  const OctantLite octant(landmarks, model);
  const TbgMultilateration tbg(landmarks, model);

  std::vector<double> e_ping, e_oct, e_tbg;
  std::uint64_t seed = 100;
  for (const GeoPoint& truth : target_grid()) {
    const auto probe = honest_probe(model, truth, seed++);
    e_ping.push_back(haversine(geoping.locate(probe), truth).value);
    const auto region = octant.locate(probe);
    e_oct.push_back(region.empty
                        ? 2000.0
                        : haversine(region.centroid, truth).value);
    e_tbg.push_back(haversine(tbg.locate(probe), truth).value);
  }
  std::printf("%-22s %10s %10s %10s\n", "Scheme", "mean km", "median km",
              "worst km");
  const ErrStats sp = stats_of(e_ping), so = stats_of(e_oct),
                 st = stats_of(e_tbg);
  std::printf("%-22s %10.0f %10.0f %10.0f\n", "GeoPing (min-RTT)", sp.mean,
              sp.p50, sp.max);
  std::printf("%-22s %10.0f %10.0f %10.0f\n", "Octant-lite (region)", so.mean,
              so.p50, so.max);
  std::printf("%-22s %10.0f %10.0f %10.0f\n", "TBG-lite (multilat.)", st.mean,
              st.p50, st.max);
  std::printf("Paper's claim [23]: worst-case errors > 1000 km for "
              "measurement-based schemes.\n");
}

void print_adversarial() {
  std::printf("\n--- Adversarial target: delay padding (truth = Brisbane) "
              "---\n");
  const auto landmarks = australian_landmarks();
  const auto model = model_with_jitter(0.0);
  const GeoPoint truth = net::places::brisbane();
  const TbgMultilateration tbg(landmarks, model);
  const GeoPing geoping(landmarks);

  std::printf("%12s %16s %16s | %28s\n", "padding ms", "TBG error km",
              "GeoPing error km", "GeoProof view (bound only grows)");
  for (const double pad : {0.0, 10.0, 20.0, 40.0, 80.0}) {
    const auto probe =
        delay_padded_probe(honest_probe(model, truth), Millis{pad});
    const double tbg_err = haversine(tbg.locate(probe), truth).value;
    const double ping_err = haversine(geoping.locate(probe), truth).value;
    // GeoProof: padding only *raises* measured RTT -> the distance bound
    // can only widen; it can never place the prover nearer the contract
    // site than it is. The enforced check (max RTT <= budget) only flips
    // toward rejection.
    std::printf("%12.0f %16.0f %16.0f | padding can only cause REJECT\n",
                pad, tbg_err, ping_err);
  }

  std::printf("\n--- IP-mapping scheme: the adversary writes the answer "
              "---\n");
  IpMappingDb db;
  db.add("cloud.example.au", net::places::sydney());  // claimed
  const GeoPoint actual{1.3521, 103.8198};            // really in Singapore
  std::printf("  database says Sydney, data sits in Singapore: error = "
              "%.0f km, undetectable from the mapping alone.\n\n",
              haversine(db.locate("cloud.example.au"), actual).value);
}

void BM_TbgLocate(benchmark::State& state) {
  const auto landmarks = australian_landmarks();
  const auto model = model_with_jitter(0.0);
  const TbgMultilateration tbg(landmarks, model);
  const auto probe = honest_probe(model, net::places::sydney());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tbg.locate(probe));
  }
}
BENCHMARK(BM_TbgLocate);

void BM_OctantLocate(benchmark::State& state) {
  const auto landmarks = australian_landmarks();
  const auto model = model_with_jitter(0.0);
  const OctantLite octant(landmarks, model);
  const auto probe = honest_probe(model, net::places::sydney());
  for (auto _ : state) {
    benchmark::DoNotOptimize(octant.locate(probe));
  }
}
BENCHMARK(BM_OctantLocate);

}  // namespace

int main(int argc, char** argv) {
  print_accuracy();
  print_adversarial();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

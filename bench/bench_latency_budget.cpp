// Experiment E3 — §V-C(b)/§V-D/§V-E/§V-F: the latency-budget arithmetic.
//
// Regenerates every number in the paper's timing analysis: the per-disk
// look-up latencies, the 1 ms LAN assumption, the 4/9 c Internet speed, the
// Δt_max ~ 16 ms budget, the 150 km-per-ms timing-error sensitivity, and
// the relay-attack distance bounds (paper formula and enforced budget).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/policy.hpp"
#include "net/latency.hpp"
#include "storage/disk_model.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

void print_budget() {
  std::printf("\n=== E3: latency budget arithmetic (§V-C(b)..§V-F) ===\n");

  std::printf("\n--- Disk look-up latencies (512 B reads) ---\n");
  std::printf("%-16s %14s | paper cites 13.1055 (WD), 5.406 (36Z15)\n",
              "Disk", "Δt_L ms");
  for (const auto& spec : storage::disk_catalog()) {
    const storage::DiskModel model(spec);
    std::printf("%-16s %14.4f\n", spec.name.c_str(),
                model.lookup_time(512).count());
  }

  std::printf("\n--- Propagation constants ---\n");
  std::printf("  light (vacuum):          %6.1f km/ms\n",
              speeds::kLightVacuum.value);
  std::printf("  fibre (2/3 c):           %6.1f km/ms -> 200 km LAN ~ 1 ms "
              "one-way (§V-E)\n",
              speeds::kLightFibre.value);
  std::printf("  Internet (4/9 c):        %6.1f km/ms -> 3 ms RTT covers "
              "200 km one-way (§V-F)\n",
              speeds::kInternetEffective.value);
  std::printf("  timing-error cost:       1 ms error = %5.1f km distance "
              "error (§III-A)\n",
              speeds::kLightVacuum.value / 2.0);

  std::printf("\n--- Audit budget ---\n");
  const LatencyPolicy paper_policy;  // 3 + 13 + 0
  std::printf("  paper: Δt_VP <= %.0f ms, Δt_L <= %.0f ms  => Δt_max ~ "
              "%.0f ms\n",
              paper_policy.max_network_rtt.count(),
              paper_policy.max_lookup.count(),
              paper_policy.max_round_trip().count());
  const LatencyPolicy calibrated =
      LatencyPolicy::for_disk(storage::wd2500jd());
  std::printf("  calibrated to WD 2500JD worst sampled look-up: Δt_max = "
              "%.2f ms (used by the deployment)\n",
              calibrated.max_round_trip().count());

  std::printf("\n--- Relay-attack distance bounds ---\n");
  std::printf("%-16s %18s %20s\n", "remote disk", "paper bound km",
              "budget bound km");
  for (const auto& spec : storage::disk_catalog()) {
    const storage::DiskModel model(spec);
    const Millis lookup = model.lookup_time(512);
    std::printf("%-16s %18.1f %20.1f\n", spec.name.c_str(),
                paper_relay_distance_bound(lookup).value,
                budget_relay_distance_bound(calibrated, Millis{1.0}, lookup)
                    .value);
  }
  std::printf("  paper's quoted number: 360 km for the IBM 36Z15.\n\n");
}

void BM_PolicyForDisk(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LatencyPolicy::for_disk(storage::wd2500jd()));
  }
}
BENCHMARK(BM_PolicyForDisk);

}  // namespace

int main(int argc, char** argv) {
  print_budget();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment T1 — Table I: look-up latency for the five reference HDDs.
//
// Reprints the paper's table from the disk catalogue, adds the derived
// Δt_L (the §V-D arithmetic) and a measured mean over sampled look-ups,
// then runs google-benchmark microbenchmarks of the disk model itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "storage/disk_model.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::storage;

void print_table1() {
  std::printf("\n=== Table I: latency for different HDD (paper §V-D) ===\n");
  std::printf("%-16s %7s %12s %14s %10s | %14s %16s\n", "Disk", "RPM",
              "avg_seek ms", "avg_rotate ms", "IDR MB/s", "paper Δt_L ms",
              "sampled mean ms");
  Rng rng(1);
  for (const DiskSpec& spec : disk_catalog()) {
    const DiskModel model(spec);
    double sum = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) {
      sum += model.sample_lookup(512, rng).count();
    }
    std::printf("%-16s %7u %12.1f %14.1f %10.1f | %14.4f %16.4f\n",
                spec.name.c_str(), spec.rpm, spec.avg_seek.count(),
                spec.avg_rotate.count(), spec.idr_mb_s,
                model.lookup_time(512).count(), sum / samples);
  }
  std::printf("\nPaper reference points: WD 2500JD Δt_L = 13.1055 ms, "
              "IBM 36Z15 Δt_L = 5.406 ms.\n");
  std::printf("Expected shape: latency strictly decreasing with RPM.\n\n");
}

void BM_LookupTimeDeterministic(benchmark::State& state) {
  const DiskModel model(wd2500jd());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.lookup_time(512));
  }
}
BENCHMARK(BM_LookupTimeDeterministic);

void BM_LookupTimeSampled(benchmark::State& state) {
  const DiskModel model(wd2500jd());
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample_lookup(512, rng));
  }
}
BENCHMARK(BM_LookupTimeSampled);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Multi-scheme AuditService throughput: how fast the scheme-agnostic
// registry can drive heterogeneous audits (MAC + dynamic-POR) through one
// service instance. This is the single-threaded baseline the ROADMAP's
// sharded audit engine will be measured against.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/audit_service.hpp"
#include "core/dynamic_geoproof.hpp"
#include "core/provider.hpp"
#include "net/channel.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

constexpr net::GeoPoint kSite{-27.47, 153.02};

por::PorParams bench_params() {
  por::PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  return p;
}

/// One simulated world with a MAC registration and a dynamic registration
/// behind one AuditService.
struct ServiceWorld {
  const Bytes master = bytes_of("bench-audit-service-master");
  por::PorParams params = bench_params();
  SimClock clock;
  net::SimAuditTimer timer{clock};

  std::unique_ptr<CloudProvider> provider;
  std::unique_ptr<net::SimRequestChannel> mac_channel;
  std::unique_ptr<VerifierDevice> mac_verifier;
  std::unique_ptr<MacAuditScheme> mac_scheme;

  std::unique_ptr<por::DynamicPorProvider> dyn_provider;
  std::unique_ptr<DynamicProviderService> dyn_wire;
  std::unique_ptr<net::SimRequestChannel> dyn_channel;
  std::unique_ptr<VerifierDevice> dyn_verifier;
  std::unique_ptr<DynamicAuditScheme> dyn_scheme;

  std::unique_ptr<AuditService> service;

  ServiceWorld() { rebuild(); }

  void rebuild() {
    Rng rng(23);
    const por::PorEncoder encoder(params);
    const auto lan = [this](net::RequestHandler handler, std::uint64_t seed) {
      return std::make_unique<net::SimRequestChannel>(
          clock, net::lan_latency(net::LanModel{}, Kilometers{0.1}, seed),
          std::move(handler));
    };
    VerifierDevice::Config vcfg;
    vcfg.position = kSite;
    vcfg.signer_height = 12;  // thousands of audits per key
    AuditorConfig base;
    base.master_key = master;
    base.expected_position = kSite;
    base.policy = LatencyPolicy::for_disk(storage::wd2500jd());

    provider = std::make_unique<CloudProvider>(
        CloudProvider::Config{.name = "dc", .location = kSite}, clock);
    const por::EncodedFile mac_file =
        encoder.encode(rng.next_bytes(50000), 1, master);
    provider->store(mac_file);
    mac_channel = lan(provider->handler(), 5);
    mac_verifier = std::make_unique<VerifierDevice>(vcfg, *mac_channel,
                                                    timer);
    AuditorConfig mac_cfg = base;
    mac_cfg.verifier_pk = mac_verifier->public_key();
    mac_scheme = std::make_unique<MacAuditScheme>(mac_cfg, params);

    dyn_provider = std::make_unique<por::DynamicPorProvider>(
        encoder.encode(rng.next_bytes(50000), 2, master));
    dyn_wire = std::make_unique<DynamicProviderService>(
        *dyn_provider, clock, storage::DiskModel(storage::wd2500jd()));
    dyn_channel = lan(dyn_wire->handler(), 7);
    dyn_verifier = std::make_unique<VerifierDevice>(vcfg, *dyn_channel,
                                                    timer);
    AuditorConfig dyn_cfg = base;
    dyn_cfg.verifier_pk = dyn_verifier->public_key();
    dyn_scheme = std::make_unique<DynamicAuditScheme>(dyn_cfg, params);
    const FileRecord dyn_record = dyn_scheme->register_file(
        2, dyn_provider->root(), dyn_provider->n_segments());

    service = std::make_unique<AuditService>();
    service->add(*mac_scheme, *mac_verifier,
                 FileRecord{1, mac_file.n_segments, 0}, 10, "mac/dc");
    service->add(*dyn_scheme, *dyn_verifier, dyn_record, 10, "dynamic/dc");
  }

  void ensure_keys(benchmark::State& state) {
    if (mac_verifier->audits_remaining() < 2 ||
        dyn_verifier->audits_remaining() < 2) {
      state.PauseTiming();
      rebuild();
      state.ResumeTiming();
    }
  }
};

/// One heterogeneous sweep: every registration audited once.
void BM_ServiceRunAll(benchmark::State& state) {
  ServiceWorld w;
  for (auto _ : state) {
    w.ensure_keys(state);
    benchmark::DoNotOptimize(w.service->run_all(w.clock));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_ServiceRunAll);

/// Single-registration audit through the registry (the per-audit overhead
/// a sharded engine pays per work item).
void BM_ServiceRunOnceMac(benchmark::State& state) {
  ServiceWorld w;
  for (auto _ : state) {
    w.ensure_keys(state);
    benchmark::DoNotOptimize(w.service->run_once(w.clock, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceRunOnceMac);

/// Batched MAC audits: one Merkle signature and one batched verify per
/// run of `range(0)` audits of the same registration. items/s here over
/// BM_ServiceRunOnceMac's is the batching speedup — same world, same
/// registration, so the ratio isolates the amortised signing and
/// key-schedule cost. (bench_million_registry covers batches scattered
/// across a large arena.)
void BM_ServiceRunBatchMac(benchmark::State& state) {
  ServiceWorld w;
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint64_t> ids(batch, 1);
  const AuditService::Now now = [&w] { return w.clock.now(); };
  for (auto _ : state) {
    w.ensure_keys(state);
    benchmark::DoNotOptimize(w.service->run_batch(now, ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ServiceRunBatchMac)->Arg(16)->Arg(64)->Arg(256);

void BM_ServiceRunOnceDynamic(benchmark::State& state) {
  ServiceWorld w;
  for (auto _ : state) {
    w.ensure_keys(state);
    benchmark::DoNotOptimize(w.service->run_once(w.clock, 2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceRunOnceDynamic);

}  // namespace

BENCHMARK_MAIN();

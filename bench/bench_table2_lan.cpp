// Experiment T2 — Table II: LAN latency within QUT.
//
// Reproduces the paper's campus survey with the LAN model: 10 machines at
// the paper's distances, RTT of a (64 B request, 1 KiB response) pair, with
// jitter percentiles. The paper's observation to reproduce: all < 1 ms.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "net/geo.hpp"
#include "net/latency.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::net;

void print_table2() {
  std::printf("\n=== Table II: LAN latency within QUT (paper §V-E) ===\n");
  std::printf("%-9s %-13s %-13s %12s %12s %12s | %s\n", "Machine", "Location",
              "Distance km", "model ms", "p50 ms", "p99 ms", "paper");
  const LanModel lan;
  Rng rng(2);
  bool all_under_1ms = true;
  for (const auto& row : table2_survey()) {
    const Kilometers d{row.distance_km};
    const double det = lan.rtt(d, 64, 1024).count();
    std::vector<double> samples(5000);
    for (double& s : samples) {
      s = lan.sample_one_way(d, 64, rng).count() +
          lan.sample_one_way(d, 1024, rng).count();
    }
    std::sort(samples.begin(), samples.end());
    const double p50 = samples[samples.size() / 2];
    const double p99 = samples[samples.size() * 99 / 100];
    all_under_1ms = all_under_1ms && p99 < 1.0;
    std::printf("%-9s %-13s %13.2f %12.4f %12.4f %12.4f | < 1\n",
                row.machine.c_str(), row.location.c_str(), row.distance_km,
                det, p50, p99);
  }
  std::printf("\nPaper's claim: every probe < 1 ms. Model reproduces: %s\n\n",
              all_under_1ms ? "YES" : "NO");
}

void BM_LanRtt(benchmark::State& state) {
  const LanModel lan;
  const Kilometers d{static_cast<double>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lan.rtt(d, 64, 1024));
  }
}
BENCHMARK(BM_LanRtt)->Arg(1)->Arg(45);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Async transport throughput: audits/sec over real TCP at 1/8/64 in-flight
// sessions, blocking vs event-loop transport at equal thread count (one
// auditor thread either way). Each provider is its own TcpServer with a
// fixed per-request service delay, so the blocking transport pays
// N x k x (rtt + service) per sweep while the async transport overlaps the
// waits and pays ~k x (rtt + service) — the headline number of the
// event-loop net layer (target: >= 2x at 8 in-flight sessions).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "core/transcript.hpp"
#include "core/verifier.hpp"
#include "net/async.hpp"
#include "net/tcp.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

constexpr net::GeoPoint kSite{-27.47, 153.02};
constexpr std::uint32_t kChallenge = 4;
/// Per-request provider service time, at the paper's disk look-up scale
/// (§V-C(b): ~5-13 ms). This is the wait the blocking transport parks a
/// thread on and the async transport overlaps.
constexpr auto kServiceDelay = std::chrono::milliseconds(5);

por::PorParams bench_params() {
  por::PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  return p;
}

/// One provider data centre: an encoded file behind a real TcpServer whose
/// handler pays a fixed service delay per request (disk stand-in).
struct Provider {
  por::EncodedFile file;
  std::unique_ptr<net::TcpServer> server;

  explicit Provider(std::uint64_t file_id, const Bytes& master) {
    Rng rng(40 + file_id);
    file = por::PorEncoder(bench_params())
               .encode(rng.next_bytes(12000), file_id, master);
    const por::EncodedFile* f = &file;
    server = std::make_unique<net::TcpServer>([f](BytesView request) {
      const SegmentRequest req = SegmentRequest::deserialize(request);
      std::this_thread::sleep_for(kServiceDelay);
      return f->segments[static_cast<std::size_t>(req.index)];
    });
  }
};

struct Fleet {
  const Bytes master = bytes_of("bench-async-net-master");
  std::vector<std::unique_ptr<Provider>> providers;
  std::unique_ptr<MacAuditScheme> scheme;
  net::SteadyAuditTimer timer;

  explicit Fleet(std::size_t n) {
    for (std::uint64_t id = 1; id <= n; ++id) {
      providers.push_back(std::make_unique<Provider>(id, master));
    }
    // All devices share the burned-in signer seed and height, so one
    // public key covers the fleet.
    AuditorConfig cfg;
    cfg.master_key = master;
    cfg.verifier_pk = crypto::MerkleSigner(device_config().signer_seed,
                                           device_config().signer_height)
                          .public_key();
    cfg.expected_position = kSite;
    cfg.policy = LatencyPolicy{Millis{50.0}, Millis{100.0}, Millis{50.0}};
    scheme = std::make_unique<MacAuditScheme>(cfg, bench_params());
  }

  FileRecord record(std::size_t i) const {
    const por::EncodedFile& f = providers[i]->file;
    return FileRecord{f.file_id, f.n_segments, 0};
  }

  static VerifierDevice::Config device_config() {
    VerifierDevice::Config vcfg;
    vcfg.position = kSite;
    // Key generation is O(2^height) per device and this bench builds up
    // to 64 devices per run, so keep the tree shallow; iteration counts
    // stay far below 512 audits per device.
    vcfg.signer_height = 9;
    return vcfg;
  }
};

/// Blocking baseline: one auditor thread audits the N providers one after
/// another, parking on every round trip.
void BM_BlockingTcpAudits(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fleet fleet(n);
  std::vector<std::unique_ptr<net::TcpRequestChannel>> channels;
  std::vector<std::unique_ptr<VerifierDevice>> devices;
  for (std::size_t i = 0; i < n; ++i) {
    channels.push_back(std::make_unique<net::TcpRequestChannel>(
        "127.0.0.1", fleet.providers[i]->server->port()));
    devices.push_back(std::make_unique<VerifierDevice>(
        Fleet::device_config(), *channels.back(), fleet.timer));
  }

  unsigned passed = 0;
  std::uint64_t audited = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      passed += fleet.scheme
                    ->audit_once(fleet.record(i), kChallenge, *devices[i])
                    .accepted;
    }
    audited += n;
    benchmark::DoNotOptimize(passed);
  }
  if (passed != audited) {
    state.SkipWithError("blocking audits failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["in_flight"] = benchmark::Counter(1.0);
  state.counters["providers"] = benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_BlockingTcpAudits)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Event-loop transport: the same auditor thread holds all N sessions in
/// flight on one EventLoop, overlapping every provider's service delay.
void BM_AsyncTcpAudits(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fleet fleet(n);
  net::EventLoop loop;
  std::vector<std::unique_ptr<net::AsyncTcpChannel>> channels;
  std::vector<std::unique_ptr<VerifierDevice>> devices;
  for (std::size_t i = 0; i < n; ++i) {
    channels.push_back(std::make_unique<net::AsyncTcpChannel>(
        loop, "127.0.0.1", fleet.providers[i]->server->port()));
    devices.push_back(std::make_unique<VerifierDevice>(
        Fleet::device_config(), *channels.back(), fleet.timer, &loop));
  }

  unsigned passed = 0;
  std::uint64_t audited = 0;
  for (auto _ : state) {
    std::size_t completed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      fleet.scheme->begin_audit(fleet.record(i), kChallenge, *devices[i],
                                [&](AuditReport&& report) {
                                  passed += report.accepted;
                                  ++completed;
                                });
    }
    while (completed < n) loop.pump(Millis{10.0});
    audited += n;
    benchmark::DoNotOptimize(passed);
  }
  if (passed != audited) {
    state.SkipWithError("async audits failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["in_flight"] = benchmark::Counter(static_cast<double>(n));
  state.counters["providers"] = benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_AsyncTcpAudits)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

// Multicloud location-estimation throughput: a vantage fleet of 50-200
// simulated auditors sweeps three provers (honest, delayed, relayed)
// through the 4-shard parked engine per iteration, with an eighth of the
// fleet lying. Reported per row:
//   items_per_second    - position estimates per second (3 per iteration)
//   honest_err_km       - median localisation error of the honest prover
//   relay_radius_km     - median confidence radius the relay attack earns
//   byz_reject_accuracy - fraction of lying vantages ejected (median)
//   byz_false_reject    - honest vantages wrongly ejected (median count)
#include <benchmark/benchmark.h>

#include <vector>

#include "core/sharded_engine.hpp"
#include "locate/fleet.hpp"
#include "net/geo.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::locate;

void BM_MulticloudLocate(benchmark::State& state) {
  const unsigned vantages = static_cast<unsigned>(state.range(0));
  const net::GeoPoint contracted = net::places::brisbane();

  FleetOptions opts;
  opts.vantages = vantages;
  opts.center = contracted;
  opts.spread = Kilometers{1800.0};
  opts.rounds = 12;
  opts.seed = 0xbe6c;
  // An eighth of the fleet is Byzantine, lying from the outer rings where
  // the lie is material.
  const std::size_t liars = vantages / 8;
  for (std::size_t k = 0; k < liars; ++k) {
    opts.lies.push_back(VantageLie{vantages - 1 - 2 * k, Millis{18.0}});
  }
  const VantageFleet fleet(opts);

  core::AuditService service;
  core::ShardedAuditEngine::Options eopts;
  eopts.shards = 4;
  core::ShardedAuditEngine engine(service, eopts);

  ProverConfig honest;
  honest.name = "honest";
  honest.claimed = honest.actual = contracted;
  ProverConfig delayed = honest;
  delayed.name = "delayed";
  delayed.behaviour = ProverBehaviour::kDelayed;
  delayed.processing = Millis{6.0};
  ProverConfig relayed = honest;
  relayed.name = "relayed";
  relayed.behaviour = ProverBehaviour::kRelayed;
  relayed.actual = net::destination(contracted, 300.0, Kilometers{1400.0});
  const std::vector<ProverConfig> provers = {honest, delayed, relayed};

  std::vector<double> honest_err, relay_radius, accuracy, false_rejects;
  for (auto _ : state) {
    const std::vector<FleetSweep> sweeps = fleet.sweep_all(provers, engine);
    benchmark::DoNotOptimize(sweeps.data());
    state.PauseTiming();
    honest_err.push_back(sweeps[0].error_vs_actual.value);
    relay_radius.push_back(sweeps[2].estimate.radius_km.value);
    if (liars > 0) {
      accuracy.push_back(static_cast<double>(sweeps[0].rejected_liars()) /
                         static_cast<double>(liars));
    }
    false_rejects.push_back(
        static_cast<double>(sweeps[0].rejected_honest()));
    state.ResumeTiming();
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(provers.size()));
  state.counters["vantages"] =
      benchmark::Counter(static_cast<double>(vantages));
  state.counters["honest_err_km"] =
      benchmark::Counter(median(std::move(honest_err)));
  state.counters["relay_radius_km"] =
      benchmark::Counter(median(std::move(relay_radius)));
  state.counters["byz_reject_accuracy"] =
      benchmark::Counter(median(std::move(accuracy)));
  state.counters["byz_false_reject"] =
      benchmark::Counter(median(std::move(false_rejects)));
}
BENCHMARK(BM_MulticloudLocate)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

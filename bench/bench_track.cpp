// Continuous-tracking throughput and detection quality. Reported per row:
//   BM_TrackServiceSweep/P  - one full tracking sweep for P providers
//                             (8 observations recorded per provider, then
//                             the service-wide commit + re-solve);
//                             items_per_second = provider track updates/s
//   BM_TrackRecordIngest    - the streaming hot path alone: one record()
//                             through the slot mutex, no solve
//   BM_RelocationDetection  - end-to-end detection latency of an 800 km
//                             relocation, in sweeps from the first
//                             post-move observation to the alarm
//                             (detect_sweeps counter; the window turnover
//                             plus CUSUM trigger must stay within the
//                             five-sweep budget the tests assert)
#include <benchmark/benchmark.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "geoloc/schemes.hpp"
#include "locate/delay_model.hpp"
#include "locate/measurement.hpp"
#include "net/geo.hpp"
#include "track/position_track.hpp"
#include "track/track_service.hpp"

namespace {

using namespace geoproof;
using net::GeoPoint;

constexpr double kInterceptMs = 4.0;
constexpr double kMsPerKm = 0.015;

locate::DelayModel exact_model() {
  std::vector<locate::CalibrationPoint> pts;
  for (int i = 0; i <= 8; ++i) {
    const double d = 250.0 * i;
    pts.push_back({Kilometers{d}, Millis{kInterceptMs + kMsPerKm * d}});
  }
  return locate::DelayModel::fit(pts);
}

locate::VantageObservation observe(const geoloc::Landmark& vantage,
                                   const GeoPoint& prover, Rng& rng) {
  const double base =
      kInterceptMs + kMsPerKm * net::haversine(vantage.pos, prover).value;
  std::vector<Millis> samples;
  for (unsigned round = 0; round < 8; ++round) {
    samples.push_back(Millis{base + 0.8 * rng.next_double()});
  }
  locate::VantageObservation obs;
  obs.vantage = vantage;
  obs.stats = locate::SampleStats::of(samples);
  obs.reported_rtt = locate::min_filtered(samples);
  obs.completed = true;
  return obs;
}

void BM_TrackServiceSweep(benchmark::State& state) {
  const std::size_t providers = static_cast<std::size_t>(state.range(0));
  const GeoPoint center = net::places::brisbane();
  const auto fleet = geoloc::spiral_landmarks(center, Kilometers{1500.0}, 8);

  track::TrackService service;
  std::vector<std::uint64_t> ids;
  std::vector<GeoPoint> homes;
  Rng layout(0x6e0c4);
  for (std::size_t p = 0; p < providers; ++p) {
    ids.push_back(service.add("p" + std::to_string(p), exact_model()));
    homes.push_back(net::destination(center, 360.0 * layout.next_double(),
                                     Kilometers{400.0 * layout.next_double()}));
  }

  Rng rng(0xbe6c7);
  std::uint64_t sweep = 0;
  for (auto _ : state) {
    ++sweep;
    for (std::size_t p = 0; p < providers; ++p) {
      for (const geoloc::Landmark& v : fleet) {
        service.record(ids[p], observe(v, homes[p], rng));
      }
    }
    benchmark::DoNotOptimize(service.commit_sweep(sweep));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(providers));
  const track::TrackService::Stats stats = service.stats();
  state.counters["fix_rate"] = static_cast<double>(stats.fixes) /
                               static_cast<double>(stats.sweeps);
  state.counters["alarms"] = static_cast<double>(stats.alarms);
}
BENCHMARK(BM_TrackServiceSweep)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_TrackRecordIngest(benchmark::State& state) {
  const GeoPoint center = net::places::brisbane();
  const auto fleet = geoloc::spiral_landmarks(center, Kilometers{1500.0}, 8);
  track::TrackService service;
  const std::uint64_t id = service.add("prover", exact_model());
  Rng rng(0x1672e57);
  std::vector<locate::VantageObservation> pool;
  for (const geoloc::Landmark& v : fleet) {
    pool.push_back(observe(v, center, rng));
  }
  std::size_t next = 0;
  for (auto _ : state) {
    service.record(id, pool[next]);
    next = (next + 1) % pool.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrackRecordIngest);

void BM_RelocationDetection(benchmark::State& state) {
  const GeoPoint center = net::places::brisbane();
  const auto fleet = geoloc::spiral_landmarks(center, Kilometers{1500.0}, 9);
  const GeoPoint home = net::destination(center, 80.0, Kilometers{180.0});
  const GeoPoint away = net::destination(home, 250.0, Kilometers{800.0});

  std::uint64_t trials = 0;
  std::uint64_t detect_sweeps_total = 0;
  std::uint64_t missed = 0;
  Rng rng(0xde7ec7);
  for (auto _ : state) {
    track::PositionTrack track(exact_model());
    std::uint64_t sweep = 0;
    const auto run = [&](const GeoPoint& where) {
      ++sweep;
      for (const geoloc::Landmark& v : fleet) {
        track.ingest(observe(v, where, rng));
      }
      return track.commit_sweep(sweep);
    };
    for (unsigned k = 0; k < 8; ++k) run(home);
    const std::uint64_t moved = sweep + 1;
    std::optional<track::RelocationAlarm> alarm;
    for (unsigned k = 0; k < 12 && !alarm; ++k) alarm = run(away);
    ++trials;
    if (alarm) {
      detect_sweeps_total += alarm->at_sweep - moved + 1;
    } else {
      ++missed;
    }
  }
  state.counters["detect_sweeps"] =
      trials > missed ? static_cast<double>(detect_sweeps_total) /
                            static_cast<double>(trials - missed)
                      : 0.0;
  state.counters["missed"] = static_cast<double>(missed);
  state.SetItemsProcessed(static_cast<std::int64_t>(trials));
}
BENCHMARK(BM_RelocationDetection)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Experiment E2 — §V-C(a): integrity assurance.
//
// Two claims to regenerate:
//  1. "a file with 1,000,000 segments and 1,000 queried per challenge ->
//     ~71.3% detection probability per challenge";
//  2. "corrupting 1/2% of the blocks makes the file irretrievable with
//     probability less than 1 in 200,000".
// Both closed-form and Monte-Carlo (on the real encoder) numbers.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "por/analysis.hpp"
#include "por/encoder.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::por;

void print_detection_tables() {
  std::printf("\n=== E2: POR detection probability (§V-C(a)) ===\n");

  std::printf("\n--- Detection vs challenge size (n = 1,000,000 segments, "
              "1,250 corrupted = 0.125%%) ---\n");
  std::printf("%8s %16s %16s\n", "k", "hypergeometric", "1-(1-p)^k");
  for (const unsigned k : {1u, 10u, 100u, 500u, 1000u, 2000u, 5000u}) {
    std::printf("%8u %16.4f %16.4f\n", k,
                detection_probability(1'000'000, 1'250, k),
                detection_probability_iid(0.00125, k));
  }
  std::printf("Paper's reference point: k = 1000 -> %.1f%% (paper: "
              "~71.3%%)\n",
              100.0 * detection_probability(1'000'000, 1'250, 1'000));

  std::printf("\n--- Monte-Carlo on the real encoder (small geometry) ---\n");
  PorParams p;
  p.ecc_data_blocks = 48;
  p.ecc_parity_blocks = 16;
  const PorEncoder encoder(p);
  const Bytes master = bytes_of("bench-master");
  Rng rng(1);
  const Bytes file = rng.next_bytes(120000);
  const EncodedFile clean = encoder.encode(file, 1, master);
  const SegmentVerifier verifier(p, master, 1);

  const double rho = 0.01;  // corrupt ~1% of segments
  std::printf("%8s %14s %14s\n", "k", "measured", "closed form");
  for (const unsigned k : {5u, 20u, 50u, 100u}) {
    int detected = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      EncodedFile damaged = clean;
      std::uint64_t m = 0;
      for (auto& seg : damaged.segments) {
        if (rng.next_bool(rho)) {
          seg[0] ^= 0x01;
          ++m;
        }
      }
      const auto challenge = sample_challenge(damaged.n_segments, k, rng);
      bool hit = false;
      for (const auto c : challenge) {
        if (!verifier.verify(c, damaged.segments[static_cast<std::size_t>(c)])) {
          hit = true;
          break;
        }
      }
      detected += hit;
    }
    std::printf("%8u %14.3f %14.3f\n", k,
                static_cast<double>(detected) / trials,
                detection_probability_iid(rho, k));
  }

  std::printf("\n--- Irretrievability bound (0.5%% block corruption, "
              "(255,223,32) RS) ---\n");
  const std::uint64_t chunks_2gb = (1ull << 27) / 223 + 1;
  std::printf("  chunks in the 2 GB example: %llu\n",
              static_cast<unsigned long long>(chunks_2gb));
  std::printf("  P[file irretrievable], erasure decoding (32/chunk):  %.3e\n",
              file_irretrievable_probability(chunks_2gb, 255, 32, 0.005));
  std::printf("  P[file irretrievable], blind decoding   (16/chunk):  %.3e\n",
              file_irretrievable_probability(chunks_2gb, 255, 16, 0.005));
  std::printf("  paper's claim: < 1/200,000 = %.3e   -> holds: %s\n",
              1.0 / 200'000,
              file_irretrievable_probability(chunks_2gb, 255, 16, 0.005) <
                      1.0 / 200'000
                  ? "YES"
                  : "NO");

  std::printf("\n--- Corruption rate sweep (blind decoding) ---\n");
  std::printf("%12s %20s\n", "block p", "P[irretrievable]");
  for (const double rate : {0.005, 0.01, 0.02, 0.03, 0.04, 0.05}) {
    std::printf("%12.3f %20.3e\n", rate,
                file_irretrievable_probability(chunks_2gb, 255, 16, rate));
  }
  std::printf("\nTag forgery: one 20-bit tag 2^-20; a 20-round audit "
              "log10(P) = %.1f.\n\n",
              log10_tag_forgery_probability(20, 20));
}

void BM_DetectionClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(detection_probability(1'000'000, 1'250, 1'000));
  }
}
BENCHMARK(BM_DetectionClosedForm);

void BM_IrretrievabilityBound(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        file_irretrievable_probability(600'000, 255, 16, 0.005));
  }
}
BENCHMARK(BM_IrretrievabilityBound);

}  // namespace

int main(int argc, char** argv) {
  print_detection_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

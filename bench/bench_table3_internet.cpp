// Experiment T3 — Table III: Internet latency within Australia.
//
// The paper traceroutes nine hosts from a Brisbane ADSL2 line and observes
// latency growing with distance (18 ms at 8 km to 82 ms at 3605 km). The
// calibrated Internet model regenerates the series; the shape checks are the
// monotone distance-latency relation and per-row agreement.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "net/geo.hpp"
#include "net/latency.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::net;

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double num = n * sxy - sx * sy;
  const double den = std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  return num / den;
}

void print_table3() {
  std::printf("\n=== Table III: Internet latency within Australia (§V-F) ===\n");
  std::printf("%-16s %-17s %10s | %10s %10s %10s\n", "URL", "Location",
              "Dist. km", "paper ms", "model ms", "sampled ms");
  const InternetModel inet;
  Rng rng(3);
  std::vector<double> paper, model;
  bool monotone = true;
  double prev = 0;
  for (const auto& row : table3_survey()) {
    const Kilometers d{row.paper_distance_km};
    const double det = inet.rtt(d).count();
    const double sampled = inet.sample_rtt(d, rng).count();
    paper.push_back(row.paper_latency_ms);
    model.push_back(det);
    monotone = monotone && det >= prev;
    prev = det;
    std::printf("%-16s %-17s %10.0f | %10.0f %10.1f %10.1f\n", row.url.c_str(),
                row.location.c_str(), row.paper_distance_km,
                row.paper_latency_ms, det, sampled);
  }
  std::printf("\nShape checks:\n");
  std::printf("  model monotone in distance:         %s\n",
              monotone ? "YES" : "NO");
  std::printf("  Pearson r (paper vs model):         %.4f (paper's claim: "
              "positive relationship)\n",
              pearson(paper, model));
  std::printf("  paper: 4/9 c => 3 ms RTT covers 200 km one-way; model "
              "propagation slope: %.4f ms/km (paper fit ~0.018)\n\n",
              (model.back() - model.front()) /
                  (table3_survey().back().paper_distance_km -
                   table3_survey().front().paper_distance_km));
}

void BM_InternetRtt(benchmark::State& state) {
  const InternetModel inet;
  const Kilometers d{static_cast<double>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inet.rtt(d));
  }
}
BENCHMARK(BM_InternetRtt)->Arg(100)->Arg(3605);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E1 — §V-A / §V-B(a): setup-phase storage overhead and speed.
//
// The paper's 2 GB example: ℓ_B = 128 bits, (255,223) RS (+14.3%), 5-block
// segments with 20-bit MACs, total "about 16.5%". This bench measures the
// actual expansion at several file sizes (byte-aligned tags make it +18.6%;
// the bit-packed ideal is +17.9%), reprints the paper's block arithmetic for
// the 2 GB file, and measures stage throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/prp.hpp"
#include "crypto/sha256.hpp"
#include "ecc/block_code.hpp"
#include "por/encoder.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::por;

const Bytes kMaster = bytes_of("bench master key");

void print_overhead_table() {
  std::printf("\n=== E1: setup-phase expansion (paper §V-A example) ===\n");
  std::printf("\nPaper arithmetic for 2 GB: b = 2^27 blocks; RS -> +14.35%%; "
              "MAC (20-bit/segment) -> +3.1%% bit-packed; paper quotes "
              "~16.5%% total.\n");
  // Exact block arithmetic at paper scale (no data is materialised).
  {
    const PorParams p;
    const std::uint64_t b = 1ull << 27;  // 2 GiB / 16 B
    const ecc::ChunkCodec codec(p.ecc_params());
    const std::uint64_t bprime = codec.encoded_blocks(b);
    const std::uint64_t v = p.blocks_per_segment;
    const std::uint64_t n_perm = (bprime + v - 1) / v * v;
    const std::uint64_t segments = n_perm / v;
    const double stored =
        static_cast<double>(segments) * p.segment_bytes();
    std::printf("  exact: b' = %llu encoded blocks (paper rounds 1.14b = "
                "153,008,209), %llu segments, expansion %.4f\n",
                static_cast<unsigned long long>(bprime),
                static_cast<unsigned long long>(segments),
                stored / static_cast<double>(b * 16));
  }

  std::printf("\n%10s %14s %14s %12s %14s %12s\n", "file", "segments",
              "stored bytes", "expansion", "ideal(bits)", "encode MB/s");
  const PorParams p;  // paper geometry
  const PorEncoder encoder(p);
  Rng rng(1);
  for (const std::size_t size : {64u << 10, 256u << 10, 1u << 20, 4u << 20}) {
    const Bytes file = rng.next_bytes(size);
    const auto start = std::chrono::steady_clock::now();
    const EncodedFile ef = encoder.encode(file, 1, kMaster);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("%9zuK %14llu %14llu %11.4f %14.4f %12.2f\n", size >> 10,
                static_cast<unsigned long long>(ef.n_segments),
                static_cast<unsigned long long>(ef.stored_bytes()),
                ef.expansion(), (255.0 / 223.0) * (660.0 / 640.0),
                static_cast<double>(size) / 1e6 / secs);
  }
  std::printf("\nSegment wire size: %zu bytes (paper: 660 bits = 82.5 B, "
              "byte-aligned here to 83 B).\n\n",
              p.segment_bytes());
}

void BM_Sha256Throughput(benchmark::State& state) {
  Rng rng(2);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(4096)->Arg(65536);

void BM_AesCtrThroughput(benchmark::State& state) {
  Rng rng(3);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  const crypto::AesCtr ctr(Bytes(16, 0x42), Bytes(12, 0x01));
  for (auto _ : state) {
    ctr.xcrypt_at(0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtrThroughput)->Arg(4096)->Arg(65536);

void BM_RsChunkEncode(benchmark::State& state) {
  Rng rng(4);
  const ecc::ChunkCodec codec;
  const Bytes data = rng.next_bytes(223 * 16);  // one full chunk
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(data));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_RsChunkEncode);

void BM_PrpApply(benchmark::State& state) {
  const crypto::BlockPermutation prp(bytes_of("bench"), 1u << 20);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x = prp.apply(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PrpApply);

void BM_FullEncode(benchmark::State& state) {
  PorParams p;
  const PorEncoder encoder(p);
  Rng rng(5);
  const Bytes file =
      rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(file, 1, kMaster));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullEncode)->Arg(256 << 10);

void BM_Extract(benchmark::State& state) {
  PorParams p;
  const PorEncoder encoder(p);
  const PorExtractor extractor(p);
  Rng rng(6);
  const Bytes file = rng.next_bytes(256 << 10);
  const EncodedFile ef = encoder.encode(file, 1, kMaster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(ef, kMaster));
  }
  state.SetBytesProcessed(state.iterations() * (256 << 10));
}
BENCHMARK(BM_Extract);

}  // namespace

int main(int argc, char** argv) {
  print_overhead_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Million-registration control plane: the arena registry's scaling proof.
//
// BM_RegistryAdd measures registration throughput at 1e4 -> 1e6 targets;
// BM_RegistryRunOnce pins the flat-per-audit-cost claim (the per-audit
// time at 1e6 registrations must stay within noise of the 1e4 time — a
// per-call map walk or history scan would show up as a slope);
// BM_RegistryRunBatch measures the batched sign/verify path that amortises
// one Merkle signature across a whole run (the 10-100x lever over
// bench_audit_service's BM_ServiceRunOnceMac); BM_ComplianceSnapshot shows
// aggregate compliance is an O(1) counter read at any registry size.
//
// The provider is procedural: any (file_id, index) segment is synthesised
// on demand with a valid tag, so a million registered files cost no
// backing store and the bench measures the control plane, not memcpy.
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/audit_service.hpp"
#include "core/provider.hpp"
#include "net/channel.hpp"
#include "por/params.hpp"

namespace {

using namespace geoproof;
using namespace geoproof::core;

constexpr net::GeoPoint kSite{-27.47, 153.02};
constexpr std::uint64_t kSegmentsPerFile = 64;
constexpr std::uint32_t kChallenge = 10;
/// Fibonacci-hash stride: visits ids in a scattered, deterministic order
/// so the flat-cost runs touch cold slots across the whole arena.
constexpr std::uint64_t kStride = 2654435761ull;

/// Serves any (file_id, index) with deterministic bytes and a freshly
/// computed valid tag — one cached SegmentMac per touched file.
struct ProceduralProvider {
  por::PorParams params;
  Bytes master;
  std::unordered_map<std::uint64_t, std::unique_ptr<crypto::SegmentMac>>
      macs;

  net::RequestHandler handler() {
    return [this](BytesView request) {
      const SegmentRequest req = SegmentRequest::deserialize(request);
      auto& mac = macs[req.file_id];
      if (!mac) {
        mac = std::make_unique<crypto::SegmentMac>(
            por::PorKeys::derive(master, req.file_id, params.tag).mac_key,
            params.tag);
      }
      Bytes wire(params.blocks_per_segment * params.block_size);
      for (std::size_t i = 0; i < wire.size(); ++i) {
        wire[i] = static_cast<std::uint8_t>(req.file_id * 31 + req.index * 7 +
                                            i);
      }
      append(wire, mac->tag({wire.data(), wire.size()}, req.index,
                            req.file_id));
      return wire;
    };
  }
};

/// One MAC scheme, one device, one LAN channel, n registrations.
struct RegistryWorld {
  const Bytes master = bytes_of("bench-million-registry-master");
  por::PorParams params;
  SimClock clock;
  net::SimAuditTimer timer{clock};
  ProceduralProvider provider;
  std::unique_ptr<net::SimRequestChannel> channel;
  std::unique_ptr<VerifierDevice> verifier;
  std::unique_ptr<MacAuditScheme> scheme;
  AuditService service{AuditService::Options{.history_limit = 8}};
  std::uint64_t n;

  explicit RegistryWorld(std::uint64_t n_regs, unsigned signer_height = 10)
      : n(n_regs) {
    provider.params = params;
    provider.master = master;
    channel = std::make_unique<net::SimRequestChannel>(
        clock, net::lan_latency(net::LanModel{}, Kilometers{0.1}, 5),
        provider.handler());
    VerifierDevice::Config vcfg;
    vcfg.position = kSite;
    vcfg.signer_height = signer_height;
    verifier = std::make_unique<VerifierDevice>(vcfg, *channel, timer);
    AuditorConfig cfg;
    cfg.master_key = master;
    cfg.expected_position = kSite;
    cfg.policy = LatencyPolicy::for_disk(storage::wd2500jd());
    cfg.verifier_pk = verifier->public_key();
    scheme = std::make_unique<MacAuditScheme>(cfg, params);
    for (std::uint64_t id = 1; id <= n; ++id) {
      service.add(*scheme, *verifier,
                  FileRecord{id, kSegmentsPerFile, 0}, kChallenge, "m");
    }
  }

  AuditService::Now now() {
    return [this] { return clock.now(); };
  }
};

/// Registration throughput: N adds (default labels) into a fresh service.
void BM_RegistryAdd(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  RegistryWorld w(0, /*signer_height=*/4);  // adds consume no keys
  for (auto _ : state) {
    AuditService service;
    for (std::uint64_t id = 1; id <= n; ++id) {
      service.add(*w.scheme, *w.verifier, FileRecord{id, kSegmentsPerFile, 0},
                  kChallenge);
    }
    benchmark::DoNotOptimize(service.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RegistryAdd)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

/// The flat-cost claim: one audit through a registry of N registrations.
/// Per-iteration time must not grow with N (acceptance: 1e6 within 1.25x
/// of 1e4). Fixed iterations keep the run inside one device key budget.
void BM_RegistryRunOnce(benchmark::State& state) {
  RegistryWorld w(static_cast<std::uint64_t>(state.range(0)));
  const AuditService::Now now = w.now();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t id = 1 + (i++ * kStride) % w.n;
    benchmark::DoNotOptimize(w.service.run_once(now, id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistryRunOnce)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Iterations(512)
    ->Unit(benchmark::kMicrosecond);

/// Batched signing and verification: one Merkle signature per run of
/// `range(0)` audits. items/s here vs BM_ServiceRunOnceMac's is the
/// amortisation factor.
void BM_RegistryRunBatch(benchmark::State& state) {
  RegistryWorld w(100000);
  const AuditService::Now now = w.now();
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t i = 0;
  std::vector<std::uint64_t> ids;
  ids.reserve(batch);
  for (auto _ : state) {
    ids.clear();
    for (std::uint64_t b = 0; b < batch; ++b) {
      ids.push_back(1 + (i++ * kStride) % w.n);
    }
    benchmark::DoNotOptimize(w.service.run_batch(now, ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_RegistryRunBatch)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(16)
    ->Unit(benchmark::kMillisecond);

/// Aggregate + per-id compliance reads: O(1) counter snapshots regardless
/// of registry size or audit history depth. Each iteration performs 1024
/// read pairs so the per-iteration time sits in the microseconds — single
/// nanosecond-scale reads are too noisy for the smoke regression gate.
void BM_ComplianceSnapshot(benchmark::State& state) {
  constexpr std::uint64_t kReadsPerIter = 1024;
  RegistryWorld w(static_cast<std::uint64_t>(state.range(0)),
                  /*signer_height=*/4);
  std::uint64_t i = 0;
  for (auto _ : state) {
    for (std::uint64_t r = 0; r < kReadsPerIter; ++r) {
      benchmark::DoNotOptimize(w.service.compliance());
      benchmark::DoNotOptimize(
          w.service.compliance(1 + (i++ * kStride) % w.n));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * kReadsPerIter));
}
BENCHMARK(BM_ComplianceSnapshot)
    ->Arg(10000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

// Coverage-guided fuzzing of net::FrameAssembler — the first parser that
// touches raw socket bytes, so every adversary on the wire reaches it
// before anything else. The input encodes both the byte stream and how the
// kernel delivers it: the first 8 bytes seed a deterministic chunking
// schedule, the rest is the stream, fed in chunks of 1..4096 bytes (so
// mid-header splits, byte-at-a-time dribbles and jumbo reads all occur).
//
// Properties enforced on every input:
//  1. feed() either succeeds or throws NetError (oversized frame); any
//     other escape is a finding;
//  2. split-invariance: the frames popped (and whether an error occurred)
//     must be identical to feeding the whole stream in one call — frame
//     boundaries may never depend on read sizes;
//  3. every popped frame fits kMaxFrameBytes, and popped payload bytes
//     never exceed bytes fed (no amplification).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "net/tcp.hpp"

namespace {

using geoproof::Bytes;
using geoproof::BytesView;
using geoproof::NetError;
using geoproof::net::FrameAssembler;
using geoproof::net::kMaxFrameBytes;

struct RunResult {
  std::vector<Bytes> frames;
  bool errored = false;
};

/// Feed `stream` in chunks whose sizes walk a SplitMix64 sequence; pop
/// completed frames after every feed. Stops at the first NetError (the
/// assembler clears its buffer on error; the connection would be dropped).
RunResult run_chunked(BytesView stream, std::uint64_t chunk_seed) {
  RunResult result;
  FrameAssembler assembler;
  std::uint64_t state = chunk_seed;
  std::size_t off = 0;
  while (off < stream.size()) {
    // SplitMix64 step, inlined so the schedule is self-contained.
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const std::size_t chunk =
        std::min<std::size_t>(stream.size() - off, 1 + (z % 4096));
    try {
      assembler.feed(stream.subspan(off, chunk));
    } catch (const NetError&) {
      result.errored = true;
    }
    while (auto frame = assembler.next()) result.frames.push_back(*frame);
    if (result.errored) return result;
    off += chunk;
  }
  return result;
}

RunResult run_whole(BytesView stream) {
  RunResult result;
  FrameAssembler assembler;
  try {
    assembler.feed(stream);
  } catch (const NetError&) {
    result.errored = true;
  }
  while (auto frame = assembler.next()) result.frames.push_back(*frame);
  return result;
}

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_frame_assembler: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 8) return 0;
  std::uint64_t chunk_seed = 0;
  for (int i = 0; i < 8; ++i) {
    chunk_seed = (chunk_seed << 8) | data[i];
  }
  const BytesView stream(data + 8, size - 8);

  const RunResult whole = run_whole(stream);
  const RunResult chunked = run_chunked(stream, chunk_seed);

  if (whole.errored != chunked.errored) {
    fail("error outcome depends on read chunking");
  }
  if (whole.frames != chunked.frames) {
    fail("frame sequence depends on read chunking");
  }
  std::size_t popped_bytes = 0;
  for (const Bytes& frame : whole.frames) {
    if (frame.size() > kMaxFrameBytes) fail("oversized frame accepted");
    popped_bytes += frame.size();
  }
  if (popped_bytes > stream.size()) fail("frame bytes exceed stream bytes");
  return 0;
}

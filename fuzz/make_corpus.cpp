// Seed-corpus generator for the fuzz targets: emits valid wire messages
// through the real serializers (plus a few single-byte mutants via the
// shared tests/fuzz_util.hpp helper), so the fuzzers start from deep in
// the accepting paths instead of spending their budget rediscovering the
// framing. Usage: geoproof_make_corpus <out-dir>  — writes
// <out-dir>/wire/* for fuzz_wire and <out-dir>/frame/* for
// fuzz_frame_assembler.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "core/transcript.hpp"
#include "crypto/signature.hpp"
#include "fuzz_util.hpp"
#include "por/dynamic.hpp"

namespace {

using geoproof::Bytes;
using geoproof::bytes_of;
using geoproof::Millis;
using geoproof::Rng;

/// Selector prefixes; keep in sync with fuzz_wire.cpp.
constexpr std::uint8_t kAuditRequest = 0;
constexpr std::uint8_t kAuditTranscript = 1;
constexpr std::uint8_t kSignedTranscript = 2;
constexpr std::uint8_t kReadProof = 3;

void write_file(const std::filesystem::path& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "make_corpus: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

Bytes with_selector(std::uint8_t selector, const Bytes& payload) {
  Bytes out;
  out.reserve(payload.size() + 1);
  out.push_back(selector);
  geoproof::append(out, payload);
  return out;
}

/// 4-byte big-endian length prefix, as the TCP framing writes it.
void append_frame(Bytes& out, const Bytes& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  geoproof::append(out, payload);
}

/// fuzz_frame_assembler expects an 8-byte chunk-schedule seed first.
Bytes framed_input(std::uint64_t chunk_seed,
                   const std::vector<Bytes>& payloads, bool truncate_tail) {
  Bytes out;
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(chunk_seed >> (8 * i)));
  }
  for (const Bytes& payload : payloads) append_frame(out, payload);
  if (truncate_tail && out.size() > 3) {
    out.resize(out.size() - 3);  // leave a mid-frame split on the wire
  }
  return out;
}

geoproof::core::AuditTranscript sample_transcript() {
  geoproof::core::AuditTranscript t;
  t.file_id = 7;
  t.nonce = bytes_of("corpus-nonce-0123");
  t.position = {-27.47, 153.02};
  t.challenge = {3, 11, 42};
  t.rtts = {Millis{4.5}, Millis{5.25}, Millis{6.0}};
  t.segments = {bytes_of("segment-a"), bytes_of("segment-b"),
                bytes_of("segment-c")};
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: geoproof_make_corpus <out-dir>\n");
    return 2;
  }
  const std::filesystem::path root = argv[1];
  const std::filesystem::path wire_dir = root / "wire";
  const std::filesystem::path frame_dir = root / "frame";
  std::filesystem::create_directories(wire_dir);
  std::filesystem::create_directories(frame_dir);

  Rng rng(0xc0bb);
  std::size_t written = 0;
  const auto emit = [&](const std::filesystem::path& dir,
                        const std::string& name, const Bytes& data,
                        int mutants) {
    write_file(dir / name, data);
    ++written;
    for (int m = 0; m < mutants; ++m) {
      Bytes mutant = data;
      geoproof::fuzzutil::mutate_one_byte(rng, mutant);
      write_file(dir / (name + "_mut" + std::to_string(m)), mutant);
      ++written;
    }
  };

  // --- wire corpus -------------------------------------------------------
  geoproof::core::AuditRequest req;
  req.file_id = 7;
  req.n_segments = 1024;
  req.k = 3;
  req.nonce = bytes_of("corpus-nonce-0123");
  req.positions = {5, 99, 512};
  emit(wire_dir, "audit_request", with_selector(kAuditRequest,
                                                req.serialize()), 3);

  geoproof::core::AuditRequest req_sampled = req;
  req_sampled.positions.clear();  // device-sampled challenge (MAC flavour)
  emit(wire_dir, "audit_request_sampled",
       with_selector(kAuditRequest, req_sampled.serialize()), 2);

  const geoproof::core::AuditTranscript t = sample_transcript();
  emit(wire_dir, "audit_transcript",
       with_selector(kAuditTranscript, t.serialize()), 3);

  geoproof::crypto::MerkleSigner signer(bytes_of("corpus-signer"), 4);
  geoproof::core::SignedTranscript st;
  st.transcript = t;
  st.signature = signer.sign(t.serialize());
  emit(wire_dir, "signed_transcript",
       with_selector(kSignedTranscript, st.serialize()), 3);

  geoproof::por::ReadProof proof;
  proof.segment = bytes_of("segment-bytes-with-tag-suffix");
  proof.path.resize(4);
  for (std::size_t level = 0; level < proof.path.size(); ++level) {
    for (std::size_t b = 0; b < proof.path[level].size(); ++b) {
      proof.path[level][b] = static_cast<std::uint8_t>(level * 31 + b);
    }
  }
  emit(wire_dir, "read_proof", with_selector(kReadProof, proof.serialize()),
       3);

  // --- frame corpus ------------------------------------------------------
  emit(frame_dir, "single", framed_input(1, {t.serialize()}, false), 2);
  emit(frame_dir, "pipelined",
       framed_input(2, {req.serialize(), t.serialize(), st.serialize()},
                    false),
       3);
  emit(frame_dir, "empty_frames", framed_input(3, {Bytes{}, Bytes{}}, false),
       1);
  emit(frame_dir, "mid_frame_tail",
       framed_input(4, {req.serialize(), t.serialize()}, true), 2);

  // Oversized header: announces kMaxFrameBytes + 1 and must be rejected
  // without buffering. Hand-built so the generator itself never allocates
  // the bogus payload.
  Bytes oversize;
  for (int i = 7; i >= 0; --i) {
    oversize.push_back(static_cast<std::uint8_t>(0x05 >> i));  // chunk seed
  }
  const std::uint32_t huge = 64u * 1024 * 1024 + 1;
  oversize.push_back(static_cast<std::uint8_t>(huge >> 24));
  oversize.push_back(static_cast<std::uint8_t>(huge >> 16));
  oversize.push_back(static_cast<std::uint8_t>(huge >> 8));
  oversize.push_back(static_cast<std::uint8_t>(huge));
  emit(frame_dir, "oversize_header", oversize, 1);

  std::printf("make_corpus: wrote %zu files under %s\n", written,
              root.c_str());
  return 0;
}

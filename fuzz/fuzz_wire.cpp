// Coverage-guided fuzzing of the wire deserializers: the bytes a malicious
// provider, a Byzantine vantage, or a corrupted link controls. The first
// input byte selects the parser under test (so one corpus explores all of
// them and libFuzzer's coverage feedback crosses message boundaries); the
// rest is the wire payload.
//
// Two properties are enforced on every input:
//  1. the parser either succeeds or throws geoproof::Error — any other
//     escape (crash, ASan report, foreign exception) is a finding;
//  2. accepted bytes are canonical: re-serializing the parsed value must
//     reproduce the input payload exactly (the parsers reject trailing
//     bytes, so any divergence means two distinct wire forms decode to the
//     same value — a signature-confusion hazard for SignedTranscript).
//
// Built with -fsanitize=fuzzer under Clang (GEOPROOF_FUZZ_LIBFUZZER), or
// with the standalone corpus-replay driver everywhere else.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "core/transcript.hpp"
#include "por/dynamic.hpp"

namespace {

using geoproof::Bytes;
using geoproof::BytesView;

/// Message selector values; keep in sync with make_corpus.cpp.
enum Selector : std::uint8_t {
  kAuditRequest = 0,
  kAuditTranscript = 1,
  kSignedTranscript = 2,
  kReadProof = 3,
  kSelectorCount = 4,
};

template <typename Message>
void parse_and_check_roundtrip(BytesView payload) {
  Message parsed = Message::deserialize(payload);
  const Bytes back = parsed.serialize();
  if (back.size() != payload.size() ||
      !std::equal(back.begin(), back.end(), payload.begin())) {
    std::fprintf(stderr,
                 "fuzz_wire: accepted non-canonical encoding "
                 "(%zu bytes in, %zu bytes out)\n",
                 payload.size(), back.size());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0] % kSelectorCount;
  const BytesView payload(data + 1, size - 1);
  try {
    switch (selector) {
      case kAuditRequest:
        parse_and_check_roundtrip<geoproof::core::AuditRequest>(payload);
        break;
      case kAuditTranscript:
        parse_and_check_roundtrip<geoproof::core::AuditTranscript>(payload);
        break;
      case kSignedTranscript:
        parse_and_check_roundtrip<geoproof::core::SignedTranscript>(payload);
        break;
      case kReadProof:
        parse_and_check_roundtrip<geoproof::por::ReadProof>(payload);
        break;
      default:
        break;
    }
  } catch (const geoproof::Error&) {
    // Typed rejection is the contract for malformed input.
  }
  return 0;
}

// Standalone driver for the fuzz targets when libFuzzer is unavailable
// (GCC builds, the default tier-1 configuration). Replays a corpus through
// LLVMFuzzerTestOneInput and optionally runs seeded random mutations of
// every corpus entry, so the harnesses and their invariants are exercised
// on every CI run even without coverage guidance.
//
// Usage:
//   <target> [--mutations N] [--seed S] [--max-random N] <file-or-dir>...
//
// Exit status is 0 unless a target invariant aborts the process (the same
// failure mode libFuzzer reports as a crash).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "fuzz_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using geoproof::Bytes;

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "standalone fuzz driver: cannot read %s\n",
                 path.c_str());
    std::exit(2);
  }
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void collect(const std::filesystem::path& path,
             std::vector<std::filesystem::path>& files) {
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  } else {
    files.push_back(path);
  }
}

void run_one(const Bytes& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

}  // namespace

int main(int argc, char** argv) {
  int mutations = 0;
  int max_random = 0;
  std::uint64_t seed = 0x9e0f;
  std::vector<std::filesystem::path> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_int = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "standalone fuzz driver: %s needs a value\n",
                     flag);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (arg == "--mutations") {
      mutations = static_cast<int>(next_int("--mutations"));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(next_int("--seed"));
    } else if (arg == "--max-random") {
      max_random = static_cast<int>(next_int("--max-random"));
    } else {
      collect(arg, files);
    }
  }

  std::size_t runs = 0;
  geoproof::Rng rng(seed);
  for (const auto& path : files) {
    const Bytes input = read_file(path);
    run_one(input);
    ++runs;
    for (int m = 0; m < mutations; ++m) {
      Bytes mutant = input;
      // Stack 1..4 single-byte mutations so corruption reaches beyond
      // hamming distance one from the corpus.
      const int flips = 1 + static_cast<int>(rng.next_below(4));
      for (int f = 0; f < flips; ++f) {
        geoproof::fuzzutil::mutate_one_byte(rng, mutant);
      }
      run_one(mutant);
      ++runs;
    }
  }
  for (int r = 0; r < max_random; ++r) {
    const Bytes input = geoproof::fuzzutil::random_buffer(rng, 2048);
    run_one(input);
    ++runs;
  }

  std::printf("standalone fuzz driver: %zu inputs, no invariant failures\n",
              runs);
  return 0;
}

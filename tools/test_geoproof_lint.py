"""Self-test for geoproof_lint.py: feed violating and clean snippets
through the rule engine on synthetic trees and assert each rule fires
exactly where it should. Stdlib unittest so it runs anywhere python3 does
(registered as the `lint_selftest` CTest entry).
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import geoproof_lint  # noqa: E402


def make_tree(files):
    """Create a temp repo-shaped tree: {relpath: content} -> root Path."""
    root = Path(tempfile.mkdtemp(prefix="geoproof_lint_test_"))
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    return root


def rules_hit(violations):
    return sorted({v.rule for v in violations})


class StripTest(unittest.TestCase):
    def test_line_comments_blanked(self):
        code = "int x;  // steady_clock here\nint y;\n"
        stripped = geoproof_lint.strip_comments_and_strings(code)
        self.assertNotIn("steady_clock", stripped)
        self.assertIn("int y;", stripped)

    def test_block_comments_preserve_line_numbers(self):
        code = "a\n/* one\ntwo */\nb\n"
        stripped = geoproof_lint.strip_comments_and_strings(code)
        self.assertEqual(code.count("\n"), stripped.count("\n"))
        self.assertNotIn("two", stripped)

    def test_string_literals_blanked(self):
        code = 'auto s = "::close(fd) mt19937";\n'
        stripped = geoproof_lint.strip_comments_and_strings(code)
        self.assertNotIn("close", stripped)
        self.assertNotIn("mt19937", stripped)

    def test_escaped_quote_does_not_end_string(self):
        code = 'auto s = "a\\"b steady_clock";\nint keep;\n'
        stripped = geoproof_lint.strip_comments_and_strings(code)
        self.assertNotIn("steady_clock", stripped)
        self.assertIn("int keep;", stripped)


class ClockRuleTest(unittest.TestCase):
    def test_flags_raw_clock_outside_allowlist(self):
        root = make_tree(
            {"src/core/policy.cpp": "auto t = std::chrono::steady_clock::now();\n"}
        )
        violations = geoproof_lint.check_patterns(root)
        self.assertEqual(rules_hit(violations), ["clock"])
        self.assertEqual(violations[0].path, "src/core/policy.cpp")
        self.assertEqual(violations[0].line, 1)

    def test_allowlisted_file_is_clean(self):
        root = make_tree(
            {"src/common/clock.hpp": "using C = std::chrono::steady_clock;\n"}
        )
        self.assertEqual(geoproof_lint.check_patterns(root), [])

    def test_comment_mention_is_clean(self):
        root = make_tree(
            {"src/core/policy.cpp": "// steady_clock over TCP\nint x;\n"}
        )
        self.assertEqual(geoproof_lint.check_patterns(root), [])


class RawSleepRuleTest(unittest.TestCase):
    def test_flags_sleep_in_library_code(self):
        root = make_tree(
            {
                "src/track/service.cpp":
                    "std::this_thread::sleep_for(std::chrono::seconds(1));\n",
                "src/core/engine.cpp":
                    "this_thread::sleep_until(deadline);\n",
            }
        )
        violations = geoproof_lint.check_patterns(root)
        self.assertEqual(rules_hit(violations), ["raw-sleep"])
        self.assertEqual(len(violations), 2)

    def test_daemon_pacing_is_allowlisted(self):
        root = make_tree(
            {
                "src/daemon/track_stream.cpp":
                    "std::this_thread::sleep_for(interval);\n",
                "src/daemon/vantage_daemon.cpp":
                    "std::this_thread::sleep_for(delay);\n",
            }
        )
        self.assertEqual(geoproof_lint.check_patterns(root), [])

    def test_comment_and_lookalike_are_clean(self):
        root = make_tree(
            {
                "src/track/service.cpp":
                    "// never sleep_for in shard workers\n"
                    "clock.sleep_for(tick); sim::this_thread::sleep_for(t);\n",
            }
        )
        self.assertEqual(geoproof_lint.check_patterns(root), [])


class RawCloseRuleTest(unittest.TestCase):
    def test_flags_global_close(self):
        root = make_tree({"src/core/engine.cpp": "void f(int fd) { ::close(fd); }\n"})
        self.assertEqual(rules_hit(geoproof_lint.check_patterns(root)), ["raw-close"])

    def test_member_close_is_clean(self):
        root = make_tree(
            {"src/core/engine.cpp": "void g(Socket& s) { s.close(); Socket::close(s); }\n"}
        )
        self.assertEqual(geoproof_lint.check_patterns(root), [])

    def test_socket_impl_is_allowlisted(self):
        root = make_tree({"src/net/async.cpp": "if (fd >= 0) ::close(fd);\n"})
        self.assertEqual(geoproof_lint.check_patterns(root), [])


class RawRngRuleTest(unittest.TestCase):
    def test_flags_mt19937_and_rand(self):
        root = make_tree(
            {
                "tests/foo_test.cpp": "std::mt19937 gen(42);\n",
                "src/core/bar.cpp": "int r = rand();\n",
            }
        )
        violations = geoproof_lint.check_patterns(root)
        self.assertEqual(rules_hit(violations), ["raw-rng"])
        self.assertEqual(len(violations), 2)

    def test_rng_module_and_lookalikes_are_clean(self):
        root = make_tree(
            {
                "src/common/rng.cpp": "std::mt19937 impl(seed);\n",
                "src/core/ok.cpp": "auto b = random_buffer(rng); o.brand(x);\n",
            }
        )
        self.assertEqual(geoproof_lint.check_patterns(root), [])


class TestRegistrationRuleTest(unittest.TestCase):
    def test_unregistered_test_is_flagged(self):
        root = make_tree(
            {
                "tests/CMakeLists.txt": "set(S\n  core_a_test.cpp)\n",
                "tests/core_a_test.cpp": "int main() {}\n",
                "tests/core_b_test.cpp": "int main() {}\n",
            }
        )
        violations = geoproof_lint.check_test_registration(root)
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].path, "tests/core_b_test.cpp")
        self.assertEqual(violations[0].rule, "test-reg")

    def test_fully_registered_tree_is_clean(self):
        root = make_tree(
            {
                "tests/CMakeLists.txt": "set(S core_a_test.cpp core_b_test.cpp)\n",
                "tests/core_a_test.cpp": "int main() {}\n",
                "tests/core_b_test.cpp": "int main() {}\n",
            }
        )
        self.assertEqual(geoproof_lint.check_test_registration(root), [])


class FunctionalRegistrationRuleTest(unittest.TestCase):
    def test_unregistered_script_is_flagged(self):
        root = make_tree(
            {
                "tests/functional/CMakeLists.txt":
                    "set(F\n  test_lifecycle.py)\n",
                "tests/functional/test_lifecycle.py": "pass\n",
                "tests/functional/test_orphan.py": "pass\n",
                "tests/functional/framework.py": "pass\n",
            }
        )
        violations = geoproof_lint.check_functional_registration(root)
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].path, "tests/functional/test_orphan.py")
        self.assertEqual(violations[0].rule, "func-reg")

    def test_helpers_without_test_prefix_are_ignored(self):
        root = make_tree(
            {
                "tests/functional/CMakeLists.txt": "set(F test_a.py)\n",
                "tests/functional/test_a.py": "pass\n",
                "tests/functional/wire.py": "pass\n",
            }
        )
        self.assertEqual(geoproof_lint.check_functional_registration(root), [])

    def test_tree_without_functional_dir_is_clean(self):
        root = make_tree({"tests/CMakeLists.txt": "set(S)\n"})
        self.assertEqual(geoproof_lint.check_functional_registration(root), [])


class MetricNameRuleTest(unittest.TestCase):
    def test_flags_unprefixed_and_uppercase_names(self):
        root = make_tree(
            {
                "src/core/engine.cpp":
                    'registry.counter("audits_total").inc();\n'
                    'metrics_->gauge("geoproof_Bad");\n',
            }
        )
        violations = geoproof_lint.check_metric_names(root)
        self.assertEqual(rules_hit(violations), ["metric-name"])
        self.assertEqual(len(violations), 2)
        self.assertEqual(violations[0].line, 1)
        self.assertIn('"audits_total"', violations[0].message)
        self.assertEqual(violations[1].line, 2)

    def test_conforming_names_are_clean(self):
        root = make_tree(
            {
                "src/core/engine.cpp":
                    'registry.counter("geoproof_audits_total").inc();\n'
                    'metrics_->histogram("geoproof_vantage_rtt_seconds",\n'
                    '                    {{"vantage", name}});\n'
                    'registry.add_snapshot("geoproof_track", fn);\n',
            }
        )
        self.assertEqual(geoproof_lint.check_metric_names(root), [])

    def test_wrapped_call_reports_the_call_site_line(self):
        root = make_tree(
            {
                "src/core/engine.cpp":
                    "int x;\n"
                    "auto& h = metrics_->histogram(\n"
                    '    "engine_sweep_seconds", {});\n',
            }
        )
        violations = geoproof_lint.check_metric_names(root)
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].line, 2)

    def test_comments_and_non_literal_names_are_ignored(self):
        root = make_tree(
            {
                "src/core/engine.cpp":
                    '// registry.counter("BadName") would be rejected\n'
                    "registry.counter(dynamic_name_).inc();\n",
            }
        )
        self.assertEqual(geoproof_lint.check_metric_names(root), [])

    def test_validator_test_file_is_allowlisted(self):
        root = make_tree(
            {
                "tests/obs_metrics_test.cpp":
                    'EXPECT_THROW(registry.counter("audits_total"), Error);\n',
            }
        )
        self.assertEqual(geoproof_lint.check_metric_names(root), [])


class AppsScanTest(unittest.TestCase):
    def test_apps_sources_are_scanned(self):
        root = make_tree(
            {"apps/mydaemon.cpp": "auto t = std::chrono::system_clock::now();\n"}
        )
        violations = geoproof_lint.check_patterns(root)
        self.assertEqual(rules_hit(violations), ["clock"])
        self.assertEqual(violations[0].path, "apps/mydaemon.cpp")


class RealTreeTest(unittest.TestCase):
    def test_repository_is_clean(self):
        repo = Path(__file__).resolve().parent.parent
        self.assertEqual(
            [v.render() for v in geoproof_lint.collect_violations(repo)], []
        )


if __name__ == "__main__":
    unittest.main()

"""Self-test for bench_json.py's baseline-compare mode: synthetic aggregate
documents through compare_docs/render_report and the --compare CLI path.
Stdlib unittest; no Google Benchmark binaries needed.
"""

import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_json  # noqa: E402


def doc(entries):
    """{key: real_time_ns} -> aggregate-document shape."""
    return {
        "schema": 1,
        "context": {},
        "suites": {},
        "benchmarks": {
            key: {"real_time": value, "cpu_time": value, "time_unit": "ns",
                  "iterations": 100}
            for key, value in entries.items()
        },
    }


class CompareDocsTest(unittest.TestCase):
    def test_regression_beyond_threshold_is_flagged(self):
        report = bench_json.compare_docs(
            doc({"bench_core/BM_A": 130.0}), doc({"bench_core/BM_A": 100.0}),
            threshold_pct=10.0)
        self.assertEqual(report["regressions"], 1)
        self.assertEqual(report["rows"][0]["status"], "regress")
        self.assertAlmostEqual(report["rows"][0]["delta_pct"], 30.0)

    def test_threshold_is_configurable(self):
        current = doc({"bench_core/BM_A": 130.0})
        base = doc({"bench_core/BM_A": 100.0})
        loose = bench_json.compare_docs(current, base, threshold_pct=50.0)
        self.assertEqual(loose["regressions"], 0)
        self.assertEqual(loose["rows"][0]["status"], "ok")

    def test_improvement_is_counted_not_flagged(self):
        report = bench_json.compare_docs(
            doc({"bench_core/BM_A": 50.0}), doc({"bench_core/BM_A": 100.0}),
            threshold_pct=10.0)
        self.assertEqual(report["regressions"], 0)
        self.assertEqual(report["improvements"], 1)

    def test_missing_and_new_keys_are_listed_not_scored(self):
        report = bench_json.compare_docs(
            doc({"bench_core/BM_New": 1.0}), doc({"bench_core/BM_Old": 1.0}),
            threshold_pct=10.0)
        self.assertEqual(report["rows"], [])
        self.assertEqual(report["missing"], ["bench_core/BM_Old"])
        self.assertEqual(report["new"], ["bench_core/BM_New"])

    def test_render_groups_by_suite(self):
        report = bench_json.compare_docs(
            doc({"bench_core/BM_A": 100.0, "bench_async/BM_B": 200.0}),
            doc({"bench_core/BM_A": 100.0, "bench_async/BM_B": 100.0}),
            threshold_pct=10.0)
        out = io.StringIO()
        bench_json.render_report(report, 10.0, out=out)
        text = out.getvalue()
        self.assertIn("suite bench_async", text)
        self.assertIn("suite bench_core", text)
        self.assertIn("1 regression(s)", text)


class CompareCliTest(unittest.TestCase):
    def run_cli(self, argv):
        old_argv = sys.argv
        sys.argv = ["bench_json.py"] + argv
        try:
            bench_json.main()
            return 0
        except SystemExit as err:
            return err.code if isinstance(err.code, int) else 1
        finally:
            sys.argv = old_argv

    def write(self, tree, name, document):
        path = Path(tree) / name
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_compare_mode_reports_without_failing_by_default(self):
        with tempfile.TemporaryDirectory() as tree:
            cur = self.write(tree, "cur.json", doc({"bench_core/BM_A": 200.0}))
            base = self.write(tree, "base.json",
                              doc({"bench_core/BM_A": 100.0}))
            self.assertEqual(
                self.run_cli(["--compare", cur, "--baseline", base]), 0)

    def test_fail_on_regress_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as tree:
            cur = self.write(tree, "cur.json", doc({"bench_core/BM_A": 200.0}))
            base = self.write(tree, "base.json",
                              doc({"bench_core/BM_A": 100.0}))
            self.assertEqual(
                self.run_cli(["--compare", cur, "--baseline", base,
                              "--fail-on-regress"]), 1)

    def test_compare_requires_baseline(self):
        with tempfile.TemporaryDirectory() as tree:
            cur = self.write(tree, "cur.json", doc({}))
            self.assertNotEqual(self.run_cli(["--compare", cur]), 0)


if __name__ == "__main__":
    unittest.main()

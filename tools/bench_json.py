#!/usr/bin/env python3
"""Run GeoProof bench binaries with JSON output and aggregate the results.

Each Google Benchmark binary is invoked with
``--benchmark_out=<tmp>.json --benchmark_out_format=json`` (several suites
print human-readable sweeps to stdout first, so stdout cannot be captured
as JSON). The per-suite files are merged into one aggregate document:

    {
      "schema": 1,
      "context": { ... first suite's benchmark context ... },
      "suites": { "<binary>": [ {name, real_time, cpu_time, ...}, ... ] },
      "benchmarks": { "<binary>/<name>": {real_time, cpu_time, time_unit,
                                          iterations, items_per_second?} }
    }

``benchmarks`` is the flat map perf PRs diff against a stored baseline.

Usage:
    tools/bench_json.py --bin-dir build/bench --out build/BENCH_core.json
    tools/bench_json.py --bin-dir build/bench --out build/BENCH_smoke.json \
        --benchmarks bench_audit_service --filter BM_ServiceRunOnceMac

Only the Python standard library is used.
"""

import argparse
import json
import os
import stat
import subprocess
import sys
import tempfile


def discover_benchmarks(bin_dir):
    """All executable bench_* binaries in bin_dir, sorted."""
    found = []
    for name in sorted(os.listdir(bin_dir)):
        path = os.path.join(bin_dir, name)
        if not name.startswith("bench_"):
            continue
        if not os.path.isfile(path):
            continue
        mode = os.stat(path).st_mode
        if mode & (stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH):
            found.append(name)
    return found


def run_one(bin_dir, name, bench_filter, min_time, timeout_s):
    """Run one bench binary; return its parsed benchmark JSON document."""
    path = os.path.join(bin_dir, name)
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix=name + ".", delete=False
    ) as tmp:
        out_path = tmp.name
    cmd = [
        path,
        "--benchmark_out=" + out_path,
        "--benchmark_out_format=json",
    ]
    if bench_filter:
        cmd.append("--benchmark_filter=" + bench_filter)
    if min_time:
        cmd.append("--benchmark_min_time=" + min_time)
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            timeout=timeout_s,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                "%s exited with %d: %s"
                % (name, proc.returncode, proc.stderr.decode(errors="replace"))
            )
        with open(out_path) as f:
            return json.load(f)
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass


def flatten(suites):
    """suite -> flat '<binary>/<benchmark>' map of the diffable numbers."""
    flat = {}
    for suite_name, entries in suites.items():
        for entry in entries:
            key = "%s/%s" % (suite_name, entry.get("name", "?"))
            flat[key] = {
                k: entry[k]
                for k in (
                    "real_time",
                    "cpu_time",
                    "time_unit",
                    "iterations",
                    "items_per_second",
                    "bytes_per_second",
                )
                if k in entry
            }
    return flat


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", required=True,
                        help="directory holding the bench_* binaries")
    parser.add_argument("--out", required=True,
                        help="aggregate JSON output path")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated binary names (default: all)")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed to each binary")
    parser.add_argument("--min-time", default="",
                        help="--benchmark_min_time passed to each binary")
    parser.add_argument("--timeout", type=int, default=1800,
                        help="per-binary timeout in seconds")
    args = parser.parse_args()

    if not os.path.isdir(args.bin_dir):
        sys.exit("bench_json: no such bin dir: %s (build the bench targets "
                 "first)" % args.bin_dir)

    names = (
        [n for n in args.benchmarks.split(",") if n]
        if args.benchmarks
        else discover_benchmarks(args.bin_dir)
    )
    if not names:
        sys.exit("bench_json: no bench binaries found in %s" % args.bin_dir)

    suites = {}
    context = None
    for name in names:
        print("bench_json: running %s ..." % name, flush=True)
        doc = run_one(args.bin_dir, name, args.filter, args.min_time,
                      args.timeout)
        if context is None:
            context = doc.get("context", {})
        suites[name] = doc.get("benchmarks", [])

    aggregate = {
        "schema": 1,
        "context": context or {},
        "suites": suites,
        "benchmarks": flatten(suites),
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(aggregate, f, indent=2, sort_keys=True)
        f.write("\n")
    total = sum(len(v) for v in suites.values())
    print("bench_json: wrote %d benchmark entries from %d suites to %s"
          % (total, len(suites), args.out))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Run GeoProof bench binaries with JSON output and aggregate the results.

Each Google Benchmark binary is invoked with
``--benchmark_out=<tmp>.json --benchmark_out_format=json`` (several suites
print human-readable sweeps to stdout first, so stdout cannot be captured
as JSON). The per-binary files are merged into aggregate documents:

    {
      "schema": 1,
      "context": { ... first binary's benchmark context ... },
      "suites": { "<binary>": [ {name, real_time, cpu_time, ...}, ... ] },
      "benchmarks": { "<binary>/<name>": {real_time, cpu_time, time_unit,
                                          iterations, items_per_second?} }
    }

``benchmarks`` is the flat map perf PRs diff against a stored baseline.

Two aggregation modes:

  * single document (``--out``): every requested binary merges into one
    file — the smoke target's shape;
  * per-suite documents (``--out-dir`` + repeated ``--suite NAME=b1,b2``):
    each named suite is run and written to ``<out-dir>/BENCH_<NAME>.json``,
    so a perf PR touching one subsystem diffs only that suite's baseline.

Usage:
    tools/bench_json.py --bin-dir build/bench --out-dir build \
        --suite core=bench_audit_service,bench_sharded_engine \
        --suite locate=bench_multicloud_locate
    tools/bench_json.py --bin-dir build/bench --out build/BENCH_smoke.json \
        --benchmarks bench_audit_service --filter BM_ServiceRunOnceMac

Compare mode: ``--baseline <file>`` diffs the freshly written aggregate
(or, with ``--compare <file>``, an existing one — no benchmarks are run)
against a stored baseline document and prints a per-suite delta report.
``--threshold`` sets the regression cut in percent (default 10); the
report is informational unless ``--fail-on-regress`` is passed, because
shared CI runners add timing noise that should not fail unrelated PRs.

    tools/bench_json.py --baseline bench/baselines/BENCH_smoke.json \
        --compare build/BENCH_smoke.json --threshold 15 --fail-on-regress

Only the Python standard library is used.
"""

import argparse
import json
import os
import stat
import subprocess
import sys
import tempfile


def discover_benchmarks(bin_dir):
    """All executable bench_* binaries in bin_dir, sorted."""
    found = []
    for name in sorted(os.listdir(bin_dir)):
        path = os.path.join(bin_dir, name)
        if not name.startswith("bench_"):
            continue
        if not os.path.isfile(path):
            continue
        mode = os.stat(path).st_mode
        if mode & (stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH):
            found.append(name)
    return found


def run_one(bin_dir, name, bench_filter, min_time, timeout_s):
    """Run one bench binary; return its parsed benchmark JSON document."""
    path = os.path.join(bin_dir, name)
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix=name + ".", delete=False
    ) as tmp:
        out_path = tmp.name
    cmd = [
        path,
        "--benchmark_out=" + out_path,
        "--benchmark_out_format=json",
    ]
    if bench_filter:
        cmd.append("--benchmark_filter=" + bench_filter)
    if min_time:
        cmd.append("--benchmark_min_time=" + min_time)
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            timeout=timeout_s,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                "%s exited with %d: %s"
                % (name, proc.returncode, proc.stderr.decode(errors="replace"))
            )
        with open(out_path) as f:
            return json.load(f)
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass


def flatten(suites):
    """suite -> flat '<binary>/<benchmark>' map of the diffable numbers."""
    flat = {}
    for suite_name, entries in suites.items():
        for entry in entries:
            key = "%s/%s" % (suite_name, entry.get("name", "?"))
            flat[key] = {
                k: entry[k]
                for k in (
                    "real_time",
                    "cpu_time",
                    "time_unit",
                    "iterations",
                    "items_per_second",
                    "bytes_per_second",
                )
                if k in entry
            }
    return flat


def run_and_write(bin_dir, names, out_path, bench_filter, min_time,
                  timeout_s):
    """Run `names` and write their aggregate document to `out_path`."""
    suites = {}
    context = None
    for name in names:
        print("bench_json: running %s ..." % name, flush=True)
        doc = run_one(bin_dir, name, bench_filter, min_time, timeout_s)
        if context is None:
            context = doc.get("context", {})
        suites[name] = doc.get("benchmarks", [])

    aggregate = {
        "schema": 1,
        "context": context or {},
        "suites": suites,
        "benchmarks": flatten(suites),
    }
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(aggregate, f, indent=2, sort_keys=True)
        f.write("\n")
    total = sum(len(v) for v in suites.values())
    print("bench_json: wrote %d benchmark entries from %d binaries to %s"
          % (total, len(suites), out_path))


def compare_docs(current, baseline, threshold_pct):
    """Diff two aggregate documents' flat ``benchmarks`` maps.

    Returns {"rows": [...], "regressions": n, "improvements": n,
    "missing": [...], "new": [...]}; each row is a dict with key,
    base/current real_time, delta_pct and status ('regress', 'improve',
    'ok'). Keys only present on one side are listed, not scored.
    """
    cur = current.get("benchmarks", {})
    base = baseline.get("benchmarks", {})
    rows = []
    regressions = 0
    improvements = 0
    for key in sorted(set(cur) & set(base)):
        base_t = base[key].get("real_time")
        cur_t = cur[key].get("real_time")
        if not base_t or cur_t is None:
            continue
        delta_pct = 100.0 * (cur_t - base_t) / base_t
        if delta_pct > threshold_pct:
            status = "regress"
            regressions += 1
        elif delta_pct < -threshold_pct:
            status = "improve"
            improvements += 1
        else:
            status = "ok"
        rows.append({
            "key": key,
            "base": base_t,
            "current": cur_t,
            "unit": cur[key].get("time_unit", base[key].get("time_unit", "")),
            "delta_pct": delta_pct,
            "status": status,
        })
    return {
        "rows": rows,
        "regressions": regressions,
        "improvements": improvements,
        "missing": sorted(set(base) - set(cur)),
        "new": sorted(set(cur) - set(base)),
    }


def render_report(report, threshold_pct, out=sys.stdout):
    """Print the per-suite delta report (suite = binary name prefix)."""
    by_suite = {}
    for row in report["rows"]:
        suite = row["key"].split("/", 1)[0]
        by_suite.setdefault(suite, []).append(row)

    marks = {"regress": "!", "improve": "+", "ok": " "}
    print("bench_json: baseline comparison (threshold %.1f%%)"
          % threshold_pct, file=out)
    for suite in sorted(by_suite):
        print("  suite %s" % suite, file=out)
        for row in by_suite[suite]:
            name = row["key"].split("/", 1)[1]
            print("   %s %-48s %10.1f -> %10.1f %-3s %+7.1f%%"
                  % (marks[row["status"]], name, row["base"], row["current"],
                     row["unit"], row["delta_pct"]), file=out)
    for key in report["missing"]:
        print("   - %s: in baseline only (renamed or removed?)" % key,
              file=out)
    for key in report["new"]:
        print("   + %s: new, no baseline entry" % key, file=out)
    print("bench_json: %d compared, %d regression(s), %d improvement(s)"
          % (len(report["rows"]), report["regressions"],
             report["improvements"]), file=out)


def load_doc(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit("bench_json: cannot load %s: %s" % (path, err))


def parse_suite(spec):
    """'NAME=bin1,bin2' -> (NAME, [bin1, bin2])."""
    name, eq, bins = spec.partition("=")
    names = [b for b in bins.split(",") if b]
    if not name or eq != "=" or not names:
        sys.exit("bench_json: bad --suite spec %r (want NAME=bin1,bin2)"
                 % spec)
    return name, names


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", default="",
                        help="directory holding the bench_* binaries "
                             "(required unless --compare)")
    parser.add_argument("--out", default="",
                        help="single aggregate JSON output path")
    parser.add_argument("--out-dir", default="",
                        help="directory for per-suite BENCH_<name>.json "
                             "files (requires --suite)")
    parser.add_argument("--suite", action="append", default=[],
                        metavar="NAME=BIN1,BIN2",
                        help="named suite to aggregate into its own "
                             "BENCH_<NAME>.json (repeatable)")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated binary names for --out mode "
                             "(default: all)")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed to each binary")
    parser.add_argument("--min-time", default="",
                        help="--benchmark_min_time passed to each binary")
    parser.add_argument("--timeout", type=int, default=1800,
                        help="per-binary timeout in seconds")
    parser.add_argument("--baseline", default="",
                        help="stored aggregate JSON to diff the results "
                             "against (with --out or --compare)")
    parser.add_argument("--compare", default="",
                        help="existing aggregate JSON to diff against "
                             "--baseline without running any benchmarks")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: %(default)s)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any benchmark regresses beyond "
                             "the threshold (default: report only)")
    args = parser.parse_args()

    if args.compare:
        if not args.baseline:
            sys.exit("bench_json: --compare requires --baseline")
        report = compare_docs(load_doc(args.compare), load_doc(args.baseline),
                              args.threshold)
        render_report(report, args.threshold)
        if args.fail_on_regress and report["regressions"]:
            sys.exit(1)
        return
    if args.baseline and not args.out:
        sys.exit("bench_json: --baseline needs --out (or --compare FILE)")

    if not args.bin_dir or not os.path.isdir(args.bin_dir):
        sys.exit("bench_json: no such bin dir: %r (build the bench targets "
                 "first)" % args.bin_dir)
    if bool(args.out) == bool(args.suite):
        sys.exit("bench_json: pass exactly one of --out (single document) "
                 "or --suite/--out-dir (per-suite documents)")

    if args.suite:
        if not args.out_dir:
            sys.exit("bench_json: --suite requires --out-dir")
        available = set(discover_benchmarks(args.bin_dir))
        for spec in args.suite:
            suite_name, names = parse_suite(spec)
            missing = [n for n in names if n not in available]
            if missing:
                sys.exit("bench_json: suite %s names missing binaries: %s"
                         % (suite_name, ", ".join(missing)))
            out_path = os.path.join(args.out_dir,
                                    "BENCH_%s.json" % suite_name)
            run_and_write(args.bin_dir, names, out_path, args.filter,
                          args.min_time, args.timeout)
        return

    names = (
        [n for n in args.benchmarks.split(",") if n]
        if args.benchmarks
        else discover_benchmarks(args.bin_dir)
    )
    if not names:
        sys.exit("bench_json: no bench binaries found in %s" % args.bin_dir)
    run_and_write(args.bin_dir, names, args.out, args.filter, args.min_time,
                  args.timeout)
    if args.baseline:
        report = compare_docs(load_doc(args.out), load_doc(args.baseline),
                              args.threshold)
        render_report(report, args.threshold)
        if args.fail_on_regress and report["regressions"]:
            sys.exit(1)


if __name__ == "__main__":
    main()

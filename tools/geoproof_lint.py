#!/usr/bin/env python3
"""Project-specific lint rules for the GeoProof tree.

Seven rules, each enforcing a discipline the type system cannot:

  clock      std::chrono::steady_clock / system_clock only in the clock
             abstraction and the explicitly real-time sites (net transport,
             engine pacing, wall-clock test deadlines). Everything else must
             go through common/clock.hpp so simulations stay deterministic.
  raw-sleep  std::this_thread::sleep_for / sleep_until only in the
             real-process daemons (delay emulation, stream pacing) and the
             wall-clock tests/benches. Library code — including the
             src/track streaming layer — must never block a thread on wall
             time: simulated worlds advance via SimClock/EventQueue, and a
             sleeping shard worker stalls a whole sweep.
  raw-close  ::close on file descriptors only inside the net Socket RAII
             wrapper; a stray close elsewhere double-closes or leaks.
  raw-rng    std::mt19937 / rand() / srand() only inside common/rng; all
             other code takes a seeded geoproof::Rng so runs replay.
  test-reg   every tests/*_test.cpp must be registered in
             tests/CMakeLists.txt, or it silently never runs in CI.
  func-reg   every tests/functional/test_*.py must be registered in
             tests/functional/CMakeLists.txt, for the same reason.
  metric-name  every literal metric name handed to obs::Registry
             (.counter/.gauge/.histogram/.add_snapshot) must match
             geoproof_[a-z0-9_]+(_seconds|_bytes|_total)? so the
             /metrics namespace stays one greppable, unit-suffixed
             family. The runtime validates charset; the lint also pins
             the geoproof_ prefix, which the runtime cannot (tests
             register foreign prefixes deliberately).

The pattern rules also cover the daemon binaries under apps/ — spawned
processes are where an unreplayable RNG or a stray wall-clock read hides
longest.

Comments and string literals are stripped before matching, so prose about
steady_clock does not trip the rules. Stdlib only; runs as a CTest entry
and as the CI lint gate.

Usage: geoproof_lint.py [--root DIR] [--list-rules]
Exit status: 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple

SCAN_DIRS = ("src", "apps", "tests", "examples", "bench", "fuzz")
CXX_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}


class Violation(NamedTuple):
    path: str  # repo-relative, posix separators
    line: int  # 1-based; 0 for file-level findings
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule(NamedTuple):
    name: str
    pattern: re.Pattern
    allowlist: frozenset  # repo-relative posix paths where the match is fine
    message: str


RULES = [
    Rule(
        name="clock",
        pattern=re.compile(
            r"std::chrono::(?:steady_clock|system_clock)"
            r"|(?<![A-Za-z0-9_:])(?:steady_clock|system_clock)::"
        ),
        allowlist=frozenset(
            {
                # The abstraction itself.
                "src/common/clock.hpp",
                # Real-time transport: RTTs are measured against the wall.
                "src/net/channel.hpp",
                "src/net/channel.cpp",
                # Event-loop timer wheel runs on the monotonic clock.
                "src/net/async.hpp",
                "src/net/async.cpp",
                # Engine sweep pacing is wall-clock by design.
                "src/core/sharded_engine.hpp",
                "src/core/sharded_engine.cpp",
                # Log timestamps are wall-clock metadata, not measured time.
                "src/common/log.cpp",
                # Real-thread tests/benches need wall-clock deadlines.
                "tests/net_async_test.cpp",
                "bench/bench_setup_overhead.cpp",
            }
        ),
        message=(
            "raw std::chrono clock outside the allowlist; take a "
            "geoproof::Clock (common/clock.hpp) so simulated time works"
        ),
    ),
    Rule(
        name="raw-sleep",
        pattern=re.compile(
            r"std::this_thread::sleep_(?:for|until)"
            r"|(?<![A-Za-z0-9_:])this_thread::sleep_(?:for|until)"
        ),
        allowlist=frozenset(
            {
                # Real-process daemons: emulated one-way delay, prover I/O
                # stalls, and track-stream sweep pacing are wall-clock by
                # design (they model real machines, not simulated ones).
                "src/daemon/prover_daemon.cpp",
                "src/daemon/track_stream.cpp",
                "src/daemon/vantage_daemon.cpp",
                # Real-thread tests/benches/demos exercise wall-clock
                # behaviour over live sockets.
                "tests/core_tcp_integration_test.cpp",
                "tests/net_async_test.cpp",
                "tests/net_tcp_test.cpp",
                "bench/bench_async_net.cpp",
                "examples/tcp_geoproof.cpp",
            }
        ),
        message=(
            "thread sleep outside the real-time allowlist; library code "
            "must advance time through SimClock/EventQueue, not block the "
            "thread on the wall"
        ),
    ),
    Rule(
        name="raw-close",
        pattern=re.compile(r"(?<![A-Za-z0-9_])::close\s*\("),
        allowlist=frozenset(
            {
                "src/net/async.cpp",
                # Plays a foreign Prometheus scraper: raw POSIX client on
                # purpose, so /metrics is proven reachable without our
                # own socket wrapper in the loop.
                "tests/obs_server_test.cpp",
            }
        ),
        message=(
            "raw ::close outside net::Socket; use the RAII Socket wrapper "
            "so descriptors cannot double-close or leak"
        ),
    ),
    Rule(
        name="raw-rng",
        pattern=re.compile(
            r"std::mt19937|(?<![A-Za-z0-9_])mt19937(?![A-Za-z0-9_])"
            r"|(?<![A-Za-z0-9_.:>])s?rand\s*\("
        ),
        allowlist=frozenset({"src/common/rng.hpp", "src/common/rng.cpp"}),
        message=(
            "raw std RNG outside common/rng; take a seeded geoproof::Rng "
            "so runs are replayable"
        ),
    ),
]


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    Replaced characters become spaces so line and column positions of the
    surviving code are unchanged. Handles //, /* */, "...", '...' with
    backslash escapes. Raw strings get the simple-delimiter treatment,
    which covers every use in this tree. With keep_strings=True only
    comments are blanked and literals survive verbatim (the metric-name
    rule reads the literal but must ignore prose in comments).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(quote if keep_strings else " ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2] if keep_strings else "  ")
                    i += 2
                else:
                    if keep_strings:
                        out.append(text[i])
                    else:
                        out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote if keep_strings else " ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_cxx_files(root: Path) -> Iterable[Path]:
    for dirname in SCAN_DIRS:
        base = root / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def check_patterns(root: Path) -> List[Violation]:
    violations = []
    for path in iter_cxx_files(root):
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            violations.append(Violation(rel, 0, "io", f"unreadable: {err}"))
            continue
        code = strip_comments_and_strings(text)
        for rule in RULES:
            if rel in rule.allowlist:
                continue
            for lineno, line in enumerate(code.splitlines(), start=1):
                if rule.pattern.search(line):
                    violations.append(
                        Violation(rel, lineno, rule.name, rule.message)
                    )
    return violations


def check_test_registration(root: Path) -> List[Violation]:
    tests_dir = root / "tests"
    cmake = tests_dir / "CMakeLists.txt"
    if not tests_dir.is_dir() or not cmake.is_file():
        return []
    registered = set(
        re.findall(r"([A-Za-z0-9_]+_test\.cpp)", cmake.read_text(encoding="utf-8"))
    )
    violations = []
    for path in sorted(tests_dir.glob("*_test.cpp")):
        if path.name not in registered:
            violations.append(
                Violation(
                    f"tests/{path.name}",
                    0,
                    "test-reg",
                    "not registered in tests/CMakeLists.txt; it will never "
                    "run in CI",
                )
            )
    return violations


def check_functional_registration(root: Path) -> List[Violation]:
    func_dir = root / "tests" / "functional"
    cmake = func_dir / "CMakeLists.txt"
    if not func_dir.is_dir() or not cmake.is_file():
        return []
    registered = set(
        re.findall(r"(test_[A-Za-z0-9_]+\.py)", cmake.read_text(encoding="utf-8"))
    )
    violations = []
    for path in sorted(func_dir.glob("test_*.py")):
        if path.name not in registered:
            violations.append(
                Violation(
                    f"tests/functional/{path.name}",
                    0,
                    "func-reg",
                    "not registered in tests/functional/CMakeLists.txt; it "
                    "will never run in CI",
                )
            )
    return violations


# Registration sites on an obs::Registry (or pointer to one) with a literal
# first argument. \s crosses newlines, so clang-format's wrapped calls
# (`registry.add_snapshot(\n    "geoproof_track", ...)`) still match;
# non-literal names (histogram(name_, ...)) are the caller's contract with
# the runtime validator and are out of scope here.
METRIC_CALL_PATTERN = re.compile(
    r'(?:\.|->)\s*(?:counter|gauge|histogram|add_snapshot)\s*\(\s*"([^"\n]*)"'
)
METRIC_NAME_PATTERN = re.compile(r"geoproof_[a-z0-9_]+(?:_seconds|_bytes|_total)?")
METRIC_NAME_ALLOWLIST = frozenset(
    {
        # Exercises the runtime validator with deliberately bad names.
        "tests/obs_metrics_test.cpp",
    }
)
METRIC_NAME_MESSAGE = (
    "metric name must match geoproof_[a-z0-9_]+(_seconds|_bytes|_total)? "
    "so every series shares the greppable geoproof_ prefix and unit suffix"
)


def check_metric_names(root: Path) -> List[Violation]:
    violations = []
    for path in iter_cxx_files(root):
        rel = path.relative_to(root).as_posix()
        if rel in METRIC_NAME_ALLOWLIST:
            continue
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue  # check_patterns already reports unreadable files
        code = strip_comments_and_strings(text, keep_strings=True)
        for match in METRIC_CALL_PATTERN.finditer(code):
            name = match.group(1)
            if METRIC_NAME_PATTERN.fullmatch(name):
                continue
            lineno = code.count("\n", 0, match.start()) + 1
            violations.append(
                Violation(
                    rel,
                    lineno,
                    "metric-name",
                    f'"{name}": {METRIC_NAME_MESSAGE}',
                )
            )
    return violations


def collect_violations(root: Path) -> List[Violation]:
    return (
        check_patterns(root)
        + check_test_registration(root)
        + check_functional_registration(root)
        + check_metric_names(root)
    )


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.message}")
        print("test-reg: every tests/*_test.cpp registered in CMakeLists.txt")
        print(
            "func-reg: every tests/functional/test_*.py registered in "
            "tests/functional/CMakeLists.txt"
        )
        print(f"metric-name: {METRIC_NAME_MESSAGE}")
        return 0

    root = args.root.resolve()
    if not root.is_dir():
        print(f"geoproof_lint: no such directory: {root}", file=sys.stderr)
        return 2

    violations = collect_violations(root)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"geoproof_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("geoproof_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
